"""Multi-host study execution: a socket coordinator leasing cells to workers.

:class:`ClusterExecutor` is the third :class:`~repro.experiments.executors.Executor`
— after serial and process-pool — and the first that crosses machine
boundaries.  The coordinator (run inline by ``map()``, inside the collector
process) listens on a TCP socket; any number of :func:`run_worker` processes,
on any host, connect and pull work:

``hello → welcome(settings) → unit → result → unit → … → shutdown``

Every message is a *length-prefixed pickle frame*: a 4-byte big-endian
payload length followed by the pickled tuple.  Frames compose the exact
objects the process-pool path already ships through ``ProcessPoolExecutor``
(:class:`~repro.experiments.plan.WorkUnit` out,
:class:`~repro.experiments.resilience.CellOutcome` back — telemetry events
and metrics snapshots riding along), and workers execute them through the
same ``_execute_unit_in_worker`` entry point, so serial, ``--jobs N``, and
cluster runs produce identical checkpoints, traces, and merged counters for
the same plan.  Determinism needs no cooperation from the scheduler: each
cell's result is a pure function of its :attr:`WorkUnit.fingerprint` (the
CRC32 seed chain), never of which worker ran it.

Crash safety is lease-based.  A dispatched unit is a *lease* with a
deadline; workers refresh it with heartbeats (sent from a side thread, so a
long ``fit`` keeps its lease).  A worker that disconnects or goes silent
past the deadline forfeits the lease: the coordinator emits a
``worker_lost`` telemetry event, closes the connection, and re-queues the
unit for the next free worker.  If the lost worker was merely slow and its
result arrives later anyway, the duplicate is dropped — each plan index is
yielded (and therefore checkpointed) exactly once.  A malformed or
truncated frame poisons only its own connection: the coordinator closes it,
re-queues the lease, and keeps serving everyone else.

Pickle frames execute arbitrary code on unpickling — run coordinators and
workers only on hosts/networks you trust, exactly like every pickle-based
RPC (``multiprocessing`` included).
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import struct
import threading
import time
from collections import deque
from typing import Iterator

from ..log import get_logger
from .executors import ExecutionSettings, _execute_unit_in_worker
from .plan import WorkUnit
from .resilience import CellOutcome

logger = get_logger("experiments.cluster")

__all__ = ["ClusterExecutor", "run_worker", "FrameError"]

_HEADER = struct.Struct(">I")
#: Frames above this are corruption, not data (a whole study's outcomes fit
#: in a few MB) — reject early instead of trying to allocate the "length".
MAX_FRAME_BYTES = 1 << 30


class FrameError(ValueError):
    """A connection delivered bytes that are not a valid frame."""


def pack_frame(message: object) -> bytes:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload)) + payload


def _send_frame(sock: socket.socket, message: object) -> None:
    sock.sendall(pack_frame(message))


def parse_frames(buf: bytearray) -> "list[object]":
    """Pop every complete frame off ``buf`` (in place); raise FrameError on rot.

    A *partial* frame is not an error — it stays buffered until more bytes
    arrive.  A length prefix beyond :data:`MAX_FRAME_BYTES` or a payload
    that fails to unpickle is malformed, and the caller must drop the
    connection (the stream has no resync point past a bad frame).
    """
    messages: "list[object]" = []
    while len(buf) >= _HEADER.size:
        (length,) = _HEADER.unpack(buf[: _HEADER.size])
        if length > MAX_FRAME_BYTES:
            raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
        if len(buf) < _HEADER.size + length:
            break
        payload = bytes(buf[_HEADER.size : _HEADER.size + length])
        del buf[: _HEADER.size + length]
        try:
            messages.append(pickle.loads(payload))
        except Exception as exc:
            raise FrameError(f"undecodable frame payload: {exc}") from exc
    return messages


def _recv_frame(sock: socket.socket) -> object:
    """Blocking read of exactly one frame (the worker side's receive loop)."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


class _WorkerConn:
    """Coordinator-side state for one connected worker."""

    __slots__ = ("sock", "addr", "buf", "host", "pid", "unit_index", "deadline", "ready")

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.buf = bytearray()
        self.host: "str | None" = None
        self.pid: "int | None" = None
        self.unit_index: "int | None" = None
        self.deadline = 0.0
        self.ready = False

    def describe(self) -> str:
        if self.host is not None:
            return f"{self.host}:{self.pid}"
        return f"{self.addr[0]}:{self.addr[1]}"


class ClusterExecutor:
    """Lease :class:`WorkUnit`\\ s to socket-connected workers on any host.

    The constructor binds and listens immediately (so ``address`` is known
    before workers launch); the coordinator event loop runs inline in
    :meth:`map`, which yields ``(index, outcome)`` pairs in completion
    order exactly like the other executors — :func:`run_study_plan` cannot
    tell them apart.  Workers may connect at any time, including mid-study.

    ``workers`` is advisory (the expected fleet size, surfaced as ``jobs``
    in the study span); the actual degree of parallelism is however many
    workers are connected at each moment.  ``lease_timeout`` bounds how
    long a silent worker holds a cell before it is re-dispatched; workers
    heartbeat every ``lease_timeout / 4`` (min 0.5 s) so only dead or
    wedged workers ever expire.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.25,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive; got {lease_timeout}")
        self.jobs = max(1, workers)
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self._events: "list[dict]" = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)

    @property
    def address(self) -> "tuple[str, int]":
        """The (host, port) workers should connect to."""
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        """Close the listening socket (idempotent; ``map`` calls it on exit)."""
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass

    def drain_events(self) -> "list[dict]":
        """Coordinator telemetry (``worker_lost``…) for the collector to merge."""
        events, self._events = self._events, []
        return events

    # -- coordinator internals -----------------------------------------

    def _emit(self, name: str, **attrs: object) -> None:
        self._events.append({
            "ev": "event", "name": name, "t": time.perf_counter(),
            "pid": os.getpid(), **attrs,
        })

    def _dispatch(self, conn: _WorkerConn, pending: deque, units: "list[WorkUnit]") -> None:
        if not conn.ready or not pending:
            return
        index = pending.popleft()
        try:
            _send_frame(conn.sock, ("unit", index, units[index]))
        except OSError:
            pending.appendleft(index)
            raise ConnectionError("send failed")
        conn.unit_index = index
        conn.deadline = time.monotonic() + self.lease_timeout
        conn.ready = False

    def map(
        self, units: "list[WorkUnit]", settings: ExecutionSettings
    ) -> Iterator[tuple[int, CellOutcome]]:
        units = list(units)
        if not units:
            self.close()
            return
        pending: deque = deque(range(len(units)))
        done = [False] * len(units)
        remaining = len(units)
        sel = selectors.DefaultSelector()
        sel.register(self._listener, selectors.EVENT_READ, None)
        conns: "dict[socket.socket, _WorkerConn]" = {}

        def drop(conn: _WorkerConn, reason: str) -> None:
            sel.unregister(conn.sock)
            del conns[conn.sock]
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover
                pass
            if conn.unit_index is not None and not done[conn.unit_index]:
                pending.appendleft(conn.unit_index)
                self._emit(
                    "worker_lost", reason=reason, worker=conn.describe(),
                    key=units[conn.unit_index].key,
                )
                logger.warning(
                    "worker %s lost (%s); re-queueing %s",
                    conn.describe(), reason, units[conn.unit_index].key,
                )
            conn.unit_index = None

        try:
            while remaining:
                ready = sel.select(timeout=self.poll_interval)
                completed: "list[tuple[int, CellOutcome]]" = []
                for key, _ in ready:
                    if key.data is None:
                        sock, addr = self._listener.accept()
                        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                        conn = _WorkerConn(sock, addr)
                        conns[sock] = conn
                        sel.register(sock, selectors.EVENT_READ, conn)
                        continue
                    conn = key.data
                    try:
                        data = conn.sock.recv(1 << 16)
                    except OSError:
                        data = b""
                    if not data:
                        drop(conn, "disconnected")
                        continue
                    conn.buf.extend(data)
                    try:
                        messages = parse_frames(conn.buf)
                    except FrameError as exc:
                        logger.warning("malformed frame from %s: %s", conn.describe(), exc)
                        drop(conn, "malformed frame")
                        continue
                    try:
                        for message in messages:
                            self._handle(conn, message, settings, pending, units,
                                         done, completed)
                    except (ConnectionError, OSError):
                        drop(conn, "disconnected")
                        continue

                now = time.monotonic()
                for conn in list(conns.values()):
                    if conn.unit_index is not None and now > conn.deadline:
                        drop(conn, "lease expired")

                # Re-queued units go to whichever workers are idle right now.
                for conn in list(conns.values()):
                    if not pending:
                        break
                    try:
                        self._dispatch(conn, pending, units)
                    except (ConnectionError, OSError):
                        drop(conn, "disconnected")

                for index, outcome in completed:
                    remaining -= 1
                    yield index, outcome
        finally:
            for conn in list(conns.values()):
                try:
                    _send_frame(conn.sock, ("shutdown",))
                except OSError:
                    pass
                try:
                    conn.sock.close()
                except OSError:  # pragma: no cover
                    pass
            sel.close()
            self.close()

    def _handle(
        self,
        conn: _WorkerConn,
        message,
        settings: ExecutionSettings,
        pending: deque,
        units: "list[WorkUnit]",
        done: "list[bool]",
        completed: "list[tuple[int, CellOutcome]]",
    ) -> None:
        if not isinstance(message, tuple) or not message:
            raise FrameError(f"unexpected message {message!r}")
        kind = message[0]
        if kind == "hello":
            _, host, pid = message
            conn.host, conn.pid = host, pid
            conn.ready = True
            _send_frame(conn.sock, ("welcome", settings, self.lease_timeout))
            self._dispatch(conn, pending, units)
        elif kind == "heartbeat":
            if conn.unit_index is not None:
                conn.deadline = time.monotonic() + self.lease_timeout
        elif kind == "result":
            _, index, outcome = message
            if conn.unit_index == index:
                conn.unit_index = None
            conn.ready = True
            if done[index]:
                # A lease expired, the unit was re-run elsewhere, and the
                # "lost" worker finished anyway: exactly-once wins, the
                # duplicate (and its telemetry batch) is dropped.
                logger.warning(
                    "dropping duplicate result for %s from %s",
                    units[index].key, conn.describe(),
                )
                self._emit(
                    "duplicate_result", worker=conn.describe(), key=units[index].key
                )
            else:
                done[index] = True
                completed.append((index, outcome))
            self._dispatch(conn, pending, units)
        else:
            raise FrameError(f"unknown message kind {kind!r}")


# ----------------------------------------------------------------------
# The worker side
# ----------------------------------------------------------------------

def run_worker(
    host: str,
    port: int,
    heartbeat_interval: "float | None" = None,
) -> int:
    """Connect to a coordinator and execute leased units until shutdown.

    Runs in the foreground (the ``repro-study worker`` subcommand); returns
    the number of units executed.  Cells run through the same memoized
    per-process runner as pool workers, so golden models are fit at most
    once per (scale, cache dir) for the lifetime of the worker — across
    every unit it leases.  Heartbeats go out from a side thread, so leases
    survive arbitrarily long training loops.
    """
    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    stop = threading.Event()
    executed = 0

    def heartbeat(interval: float) -> None:
        while not stop.wait(interval):
            try:
                with send_lock:
                    _send_frame(sock, ("heartbeat",))
            except OSError:
                return

    try:
        with send_lock:
            _send_frame(sock, ("hello", socket.gethostname(), os.getpid()))
        message = _recv_frame(sock)
        if not (isinstance(message, tuple) and message[0] == "welcome"):
            raise FrameError(f"expected welcome, got {message!r}")
        settings: ExecutionSettings = message[1]
        lease_timeout = float(message[2]) if len(message) > 2 else 60.0
        interval = heartbeat_interval
        if interval is None:
            # A quarter of the lease: three missed beats before expiry.
            interval = min(15.0, max(0.1, lease_timeout / 4))
        thread = threading.Thread(target=heartbeat, args=(interval,), daemon=True)
        thread.start()
        logger.info("worker %s:%d connected to %s:%d", socket.gethostname(),
                    os.getpid(), host, port)
        while True:
            message = _recv_frame(sock)
            if not isinstance(message, tuple) or not message:
                raise FrameError(f"unexpected message {message!r}")
            if message[0] == "shutdown":
                break
            if message[0] != "unit":
                raise FrameError(f"unexpected message kind {message[0]!r}")
            _, index, unit = message
            outcome = _execute_unit_in_worker(unit, settings)
            executed += 1
            with send_lock:
                _send_frame(sock, ("result", index, outcome))
    except ConnectionError:
        # Coordinator went away (or revoked our lease): a worker is
        # disposable by design — exit quietly, progress is checkpointed.
        logger.info("worker %s:%d lost its coordinator; exiting",
                    socket.gethostname(), os.getpid())
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
    return executed
