"""Study drivers — one function per paper table/figure (DESIGN.md §3).

Each driver runs the relevant slice of the experiment grid through an
:class:`~repro.experiments.runner.ExperimentRunner` and returns structured
results; :mod:`repro.experiments.report` renders them as text matching the
paper's tables and figure series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.spec import FaultSpec, FaultType, mislabelling, removal, repetition, single_fault
from ..metrics.overhead import OverheadResult, RuntimeCost, relative_overhead
from ..metrics.stats import MeanWithCI, statistically_similar
from ..mitigation.registry import technique_names
from .plan import iter_grid, techniques_for
from .runner import ExperimentResult, ExperimentRunner

__all__ = [
    "FIG3_MODELS",
    "DEFAULT_FAULT_RATES",
    "ADSeries",
    "ADPanel",
    "golden_accuracy_table",
    "study_grid",
    "full_study",
    "ad_panel",
    "fig3_panels",
    "fig4_panels",
    "overhead_table",
    "combined_fault_analysis",
    "CombinedFaultVerdict",
    "motivating_example",
    "MotivatingExampleResult",
]

#: The four models of Fig. 3 (a–h).
FIG3_MODELS = ("resnet50", "vgg16", "convnet", "mobilenet")

#: The paper's fault percentages (§IV).
DEFAULT_FAULT_RATES = (0.1, 0.3, 0.5)


@dataclass
class ADSeries:
    """AD as a function of fault rate for one technique (one figure line)."""

    technique: str
    rates: list[float] = field(default_factory=list)
    points: list[MeanWithCI] = field(default_factory=list)

    def at(self, rate: float) -> MeanWithCI:
        try:
            return self.points[self.rates.index(rate)]
        except ValueError:
            raise KeyError(f"no point at rate {rate} (have {self.rates})") from None


@dataclass
class ADPanel:
    """One figure panel: every technique's AD series for a fixed
    (dataset, model, fault type)."""

    dataset: str
    model: str
    fault_type: FaultType
    series: dict[str, ADSeries] = field(default_factory=dict)
    raw_results: dict[tuple[str, float], ExperimentResult] = field(default_factory=dict)

    @property
    def title(self) -> str:
        return f"{self.dataset}, {self.model}, {self.fault_type.value}"

    def winner_at(self, rate: float) -> str:
        """Technique with the lowest mean AD at ``rate``."""
        return min(self.series, key=lambda t: self.series[t].at(rate).mean)


# Compatibility aliases: the canonical implementations moved to leaf modules
# (faults.spec / experiments.plan) so the planner and worker processes can
# share them without importing this driver layer.
_make_fault = single_fault
_techniques_for = techniques_for


# ----------------------------------------------------------------------
# Table IV — golden accuracies per technique
# ----------------------------------------------------------------------

def golden_accuracy_table(
    runner: ExperimentRunner,
    models: tuple[str, ...] = ("resnet50", "vgg16", "convnet", "mobilenet"),
    datasets: tuple[str, ...] = ("cifar10", "gtsrb", "pneumonia"),
    techniques: list[str] | None = None,
) -> dict[tuple[str, str, str], MeanWithCI]:
    """Accuracy of each technique trained *without* fault injection.

    Returns ``{(model, dataset, technique): accuracy}`` — the cells of paper
    Table IV (the "Base" column is the plain baseline).
    """
    techniques = techniques or technique_names()
    table: dict[tuple[str, str, str], MeanWithCI] = {}
    for model in models:
        for dataset in datasets:
            for technique in techniques:
                result = runner.run(dataset, model, technique, fault=None)
                table[(model, dataset, technique)] = result.faulty_accuracy
    return table


# ----------------------------------------------------------------------
# Figures 3 & 4 — AD panels
# ----------------------------------------------------------------------

def ad_panel(
    runner: ExperimentRunner,
    dataset: str,
    model: str,
    fault_type: FaultType,
    rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    techniques: list[str] | None = None,
) -> ADPanel:
    """Measure one figure panel: AD vs fault rate for every technique."""
    panel = ADPanel(dataset=dataset, model=model, fault_type=fault_type)
    for technique in _techniques_for(fault_type, techniques):
        series = ADSeries(technique=technique)
        for rate in rates:
            result = runner.run(dataset, model, technique, fault=_make_fault(fault_type, rate))
            series.rates.append(rate)
            series.points.append(result.accuracy_delta)
            panel.raw_results[(technique, rate)] = result
        panel.series[technique] = series
    return panel


def fig3_panels(
    runner: ExperimentRunner,
    models: tuple[str, ...] = FIG3_MODELS,
    rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    techniques: list[str] | None = None,
) -> dict[tuple[str, str], ADPanel]:
    """Fig. 3: GTSRB panels — mislabelling (a–d) and removal (e–h)."""
    panels: dict[tuple[str, str], ADPanel] = {}
    for fault_type in (FaultType.MISLABELLING, FaultType.REMOVAL):
        for model in models:
            panels[(fault_type.value, model)] = ad_panel(
                runner, "gtsrb", model, fault_type, rates, techniques
            )
    return panels


def fig4_panels(
    runner: ExperimentRunner,
    datasets: tuple[str, ...] = ("cifar10", "gtsrb", "pneumonia"),
    rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    techniques: list[str] | None = None,
) -> dict[tuple[str, str, str], ADPanel]:
    """Fig. 4: per-dataset panels — ResNet50/mislabelling and
    MobileNet/repetition for each dataset."""
    panels: dict[tuple[str, str, str], ADPanel] = {}
    for dataset in datasets:
        panels[(dataset, "resnet50", "mislabelling")] = ad_panel(
            runner, dataset, "resnet50", FaultType.MISLABELLING, rates, techniques
        )
        panels[(dataset, "mobilenet", "repetition")] = ad_panel(
            runner, dataset, "mobilenet", FaultType.REPETITION, rates, techniques
        )
    return panels


# ----------------------------------------------------------------------
# §IV-E — runtime overheads
# ----------------------------------------------------------------------

def overhead_table(
    runner: ExperimentRunner,
    dataset: str = "gtsrb",
    model: str = "convnet",
    fault_rate: float = 0.1,
    techniques: list[str] | None = None,
) -> dict[str, OverheadResult]:
    """Training/inference overheads of each technique relative to the baseline."""
    techniques = techniques or technique_names()
    if "baseline" not in techniques:
        techniques = ["baseline", *techniques]
    fault = mislabelling(fault_rate)
    costs: dict[str, RuntimeCost] = {}
    for technique in techniques:
        result = runner.run(dataset, model, technique, fault=fault)
        costs[technique] = RuntimeCost(
            training_s=result.mean_training_s, inference_s=result.mean_inference_s
        )
    baseline_cost = costs["baseline"]
    return {
        technique: relative_overhead(technique, cost, baseline_cost)
        for technique, cost in costs.items()
        if technique != "baseline"
    }


# ----------------------------------------------------------------------
# §IV-C — combined fault types
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CombinedFaultVerdict:
    """Is a combined fault's AD statistically similar to its dominant part's?"""

    combined_label: str
    dominant_label: str
    combined_ad: MeanWithCI
    dominant_ad: MeanWithCI
    similar: bool


def combined_fault_analysis(
    runner: ExperimentRunner,
    dataset: str = "gtsrb",
    model: str = "convnet",
    rate: float = 0.3,
    technique: str = "baseline",
) -> list[CombinedFaultVerdict]:
    """Reproduce §IV-C: combined faults behave like their dominant component.

    The paper reports mislabelling+removal ≈ mislabelling,
    mislabelling+repetition ≈ mislabelling, and removal+repetition ≈
    repetition (all "statistically similar").
    """
    singles = {
        "mislabelling": runner.run(dataset, model, technique, mislabelling(rate)),
        "removal": runner.run(dataset, model, technique, removal(rate)),
        "repetition": runner.run(dataset, model, technique, repetition(rate)),
    }
    combos = [
        (mislabelling(rate) & removal(rate), "mislabelling"),
        (mislabelling(rate) & repetition(rate), "mislabelling"),
        (removal(rate) & repetition(rate), "repetition"),
    ]
    verdicts: list[CombinedFaultVerdict] = []
    for spec, dominant in combos:
        combined = runner.run(dataset, model, technique, spec)
        dominant_result = singles[dominant]
        combined_values = combined.ad_values()
        dominant_values = dominant_result.ad_values()
        if len(combined_values) >= 2 and len(dominant_values) >= 2:
            similar = statistically_similar(combined_values, dominant_values)
        else:  # single repetition: compare means within a tolerance
            similar = abs(combined.accuracy_delta.mean - dominant_result.accuracy_delta.mean) < 0.15
        verdicts.append(
            CombinedFaultVerdict(
                combined_label=spec.label,
                dominant_label=dominant_result.config.fault_label,
                combined_ad=combined.accuracy_delta,
                dominant_ad=dominant_result.accuracy_delta,
                similar=similar,
            )
        )
    return verdicts


# ----------------------------------------------------------------------
# §II + §III-D — the motivating Pneumonia example
# ----------------------------------------------------------------------

@dataclass
class MotivatingExampleResult:
    """Golden/faulty accuracies and per-technique ADs for Pneumonia+ResNet50."""

    golden_accuracy: MeanWithCI
    baseline_faulty_accuracy: MeanWithCI
    baseline_ad: MeanWithCI
    technique_ads: dict[str, MeanWithCI]

    def ranked_techniques(self) -> list[tuple[str, float]]:
        """Techniques sorted by mean AD, best (lowest) first."""
        return sorted(
            ((name, ci.mean) for name, ci in self.technique_ads.items()), key=lambda kv: kv[1]
        )


def study_grid(
    models: tuple[str, ...],
    datasets: tuple[str, ...],
    fault_types: tuple[FaultType, ...],
    rates: tuple[float, ...],
    techniques: list[str] | None = None,
):
    """Yield the study grid cells as ``(dataset, model, technique, fault_type,
    rate)`` tuples, in the canonical sweep order.

    Delegates to :func:`repro.experiments.plan.iter_grid` — the single source
    of the sweep order shared with :func:`repro.experiments.plan.plan_study`
    — so plain, resilient, and parallel drivers all walk the identical grid.
    """
    yield from iter_grid(models, datasets, fault_types, rates, techniques)


def full_study(
    runner: ExperimentRunner,
    models: tuple[str, ...] = ("convnet", "vgg16", "resnet18"),
    datasets: tuple[str, ...] = ("cifar10", "gtsrb", "pneumonia"),
    fault_types: tuple[FaultType, ...] = (
        FaultType.MISLABELLING,
        FaultType.REPETITION,
        FaultType.REMOVAL,
    ),
    rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    techniques: list[str] | None = None,
    progress: "callable | None" = None,
    checkpoint: "object | None" = None,
    retry: "object | None" = None,
    executor: "object | None" = None,
    jobs: "int | None" = None,
    trace: "object | None" = None,
) -> list[ExperimentResult]:
    """Run the study grid (paper §IV) and return every cell's result.

    This is the programmatic equivalent of the paper's 33-GPU-day sweep; at
    the default scales it covers the same grid *shape* on a subset of models.
    Combine with :func:`repro.experiments.save_results` to archive the run.
    ``progress`` (if given) is called with each completed
    :class:`ExperimentResult`.

    Passing ``checkpoint`` (a journal path or
    :class:`~repro.experiments.resilience.StudyCheckpoint`) and/or ``retry``
    (a :class:`~repro.experiments.resilience.RetryPolicy`) routes the sweep
    through the fault-tolerant driver: already-journaled cells replay without
    retraining, failing cells are retried and then recorded instead of
    aborting, and only the successful results are returned.  Use
    :func:`~repro.experiments.resilience.run_resilient_study` directly for
    the full :class:`~repro.experiments.resilience.StudyReport` (including
    failures).

    ``executor`` (an :class:`~repro.experiments.executors.Executor`) or
    ``jobs`` (> 1, shorthand for
    :class:`~repro.experiments.executors.ParallelExecutor`) fans the grid out
    across worker processes.  Cell results are deterministic per
    :class:`~repro.experiments.plan.WorkUnit`, so a parallel sweep returns
    payloads identical to the serial run (wall-clock timings aside), in the
    same canonical grid order.

    ``trace`` (a JSONL path or a :class:`~repro.telemetry.Telemetry`) records
    a merged study trace — summarize it with ``repro-study trace <file>``.
    """
    if executor is None and jobs is not None and jobs > 1:
        from .executors import ParallelExecutor

        executor = ParallelExecutor(jobs=jobs)
    if checkpoint is not None or retry is not None or executor is not None or trace is not None:
        from .resilience import run_resilient_study

        report = run_resilient_study(
            runner,
            models=models,
            datasets=datasets,
            fault_types=fault_types,
            rates=rates,
            techniques=techniques,
            checkpoint=checkpoint,
            retry=retry,
            progress=progress,
            executor=executor,
            trace=trace,
        )
        return report.results

    results: list[ExperimentResult] = []
    for dataset, model, technique, fault_type, rate in study_grid(
        models, datasets, fault_types, rates, techniques
    ):
        result = runner.run(dataset, model, technique, _make_fault(fault_type, rate))
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def motivating_example(
    runner: ExperimentRunner,
    dataset: str = "pneumonia",
    model: str = "resnet50",
    rate: float = 0.1,
    techniques: list[str] | None = None,
) -> MotivatingExampleResult:
    """Reproduce §II/§III-D: 10 % mislabelling on the Pneumonia dataset.

    The paper reports golden accuracy 90 % collapsing to 55 % unprotected,
    with per-technique ADs of LS 5 %, LC 29 %, RL 15 %, KD 13 %, Ens 5 %.
    """
    fault = mislabelling(rate)
    baseline = runner.run(dataset, model, "baseline", fault)
    technique_ads: dict[str, MeanWithCI] = {}
    for technique in techniques or technique_names(include_baseline=False):
        result = runner.run(dataset, model, technique, fault)
        technique_ads[technique] = result.accuracy_delta
    return MotivatingExampleResult(
        golden_accuracy=baseline.golden_accuracy,
        baseline_faulty_accuracy=baseline.faulty_accuracy,
        baseline_ad=baseline.accuracy_delta,
        technique_ads=technique_ads,
    )
