"""Text rendering of study results in the shape of the paper's tables/figures."""

from __future__ import annotations

from ..metrics.overhead import OverheadResult
from ..metrics.stats import MeanWithCI
from ..mitigation.registry import TECHNIQUE_ABBREVIATIONS
from .study import ADPanel, CombinedFaultVerdict, MotivatingExampleResult

__all__ = [
    "render_table4",
    "render_panel",
    "render_panels",
    "render_overheads",
    "render_combined_verdicts",
    "render_motivating_example",
]

_DATASET_IDS = {"cifar10": "1", "gtsrb": "2", "pneumonia": "3"}


def _abbrev(technique: str) -> str:
    return TECHNIQUE_ABBREVIATIONS.get(technique, technique)


def render_table4(
    table: dict[tuple[str, str, str], MeanWithCI],
    models: tuple[str, ...],
    datasets: tuple[str, ...],
    techniques: list[str],
) -> str:
    """Render golden accuracies in the layout of paper Table IV.

    Rows are (model, dataset-id) pairs; columns are technique abbreviations;
    the per-row maximum is marked with ``*``.
    """
    header = f"{'Model':<12}{'DS':<4}" + "".join(f"{_abbrev(t):>8}" for t in techniques)
    lines = [header, "-" * len(header)]
    for model in models:
        for dataset in datasets:
            cells: list[str] = []
            means = {
                t: table[(model, dataset, t)].mean
                for t in techniques
                if (model, dataset, t) in table
            }
            best = max(means.values()) if means else None
            for technique in techniques:
                key = (model, dataset, technique)
                if key not in table:
                    cells.append(f"{'-':>8}")
                    continue
                value = table[key].mean
                marker = "*" if best is not None and value == best else ""
                cells.append(f"{value:>7.0%}{marker or ' '}")
            lines.append(f"{model:<12}{_DATASET_IDS.get(dataset, dataset):<4}" + "".join(cells))
    return "\n".join(lines)


def render_panel(panel: ADPanel) -> str:
    """Render one figure panel: technique rows × fault-rate columns of AD."""
    rates = next(iter(panel.series.values())).rates if panel.series else []
    header = f"{'Technique':<24}" + "".join(f"{round(r * 100)}%".rjust(16) for r in rates)
    lines = [f"[{panel.title}]", header, "-" * len(header)]
    for technique, series in panel.series.items():
        cells = "".join(
            f"{p.mean:>8.1%} ±{p.half_width:<5.1%}".rjust(16) for p in series.points
        )
        lines.append(f"{_abbrev(technique):<24}" + cells)
    return "\n".join(lines)


def render_panels(panels: dict, title: str) -> str:
    """Render a dict of panels under one heading."""
    blocks = [f"=== {title} ==="]
    blocks.extend(render_panel(panel) for panel in panels.values())
    return "\n\n".join(blocks)


def render_overheads(overheads: dict[str, OverheadResult]) -> str:
    """Render §IV-E-style overhead multipliers."""
    header = f"{'Technique':<24}{'Training':>12}{'Inference':>12}"
    lines = [header, "-" * len(header)]
    for technique, result in overheads.items():
        lines.append(
            f"{_abbrev(technique):<24}"
            f"{result.training_overhead:>11.2f}x{result.inference_overhead:>11.2f}x"
        )
    return "\n".join(lines)


def render_combined_verdicts(verdicts: list[CombinedFaultVerdict]) -> str:
    """Render §IV-C combined-fault similarity judgements."""
    lines = []
    for verdict in verdicts:
        judgement = "similar" if verdict.similar else "DIFFERENT"
        lines.append(
            f"{verdict.combined_label:<42} AD={verdict.combined_ad.mean:>6.1%}  vs  "
            f"{verdict.dominant_label:<18} AD={verdict.dominant_ad.mean:>6.1%}  -> {judgement}"
        )
    return "\n".join(lines)


def render_motivating_example(result: MotivatingExampleResult) -> str:
    """Render the §II/§III-D motivating example summary."""
    lines = [
        f"golden accuracy:          {result.golden_accuracy.mean:.1%}",
        f"faulty baseline accuracy: {result.baseline_faulty_accuracy.mean:.1%}",
        f"baseline AD:              {result.baseline_ad.mean:.1%}",
        "per-technique AD (lower is better):",
    ]
    for technique, ad in result.ranked_techniques():
        lines.append(f"  {_abbrev(technique):<6} {ad:.1%}")
    return "\n".join(lines)
