"""Disk cache for experiment cells.

Training is the study's dominant cost; every cell is fully determined by the
scale fingerprint, configuration, and repetition seed, so its predictions and
measured runtime can be cached on disk and reused across processes (e.g.
successive benchmark runs).  Keys are hashed into filenames; payloads are
``.npz`` files holding the predictions and the original runtime cost.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np

from ..metrics.overhead import RuntimeCost

__all__ = ["CellCache"]


class CellCache:
    """A content-addressed store of (predictions, runtime cost) per cell key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:32]
        return self.directory / f"{digest}.npz"

    def get(self, key: str) -> tuple[np.ndarray, RuntimeCost] | None:
        """Look up a cell; returns None on miss or corrupt entry."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                stored_key = str(archive["key"])
                if stored_key != key:  # hash collision (astronomically unlikely)
                    return None
                predictions = archive["predictions"]
                cost = RuntimeCost(
                    training_s=float(archive["training_s"]),
                    inference_s=float(archive["inference_s"]),
                )
                return predictions, cost
        except (OSError, KeyError, ValueError):
            return None

    def put(self, key: str, predictions: np.ndarray, cost: RuntimeCost) -> None:
        """Store a cell's predictions and measured runtime."""
        np.savez(
            self._path(key),
            key=np.str_(key),
            predictions=np.asarray(predictions),
            training_s=np.float64(cost.training_s),
            inference_s=np.float64(cost.inference_s),
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz"))

    def clear(self) -> None:
        """Delete every cached cell."""
        for path in self.directory.glob("*.npz"):
            path.unlink()
