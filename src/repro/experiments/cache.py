"""Disk cache for experiment cells.

Training is the study's dominant cost; every cell is fully determined by the
scale fingerprint, configuration, and repetition seed, so its predictions and
measured runtime can be cached on disk and reused across processes (e.g.
successive benchmark runs).  Keys are hashed into filenames; payloads are
``.npz`` files holding the predictions and the original runtime cost.

Crash safety: :meth:`CellCache.put` writes to a ``*.tmp`` sibling and
atomically renames it into place, so a killed process can never leave a
truncated ``.npz`` behind; :meth:`CellCache.get` quarantines unreadable
entries into a ``corrupt/`` subdirectory (counted in
:attr:`CellCache.quarantined`) instead of silently missing forever.

Concurrent writers (parallel sweeps): temp names embed the writer's PID plus
a per-process counter, so two processes storing the same key never collide on
the temp file — each completes its own atomic rename, and since cells are
deterministic functions of their key, whichever rename lands last installs
identical content.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import zipfile
from pathlib import Path

import numpy as np

from ..metrics.overhead import RuntimeCost

__all__ = ["CellCache"]

#: Monotonic suffix so one process's successive temp files never collide
#: either (e.g. retry after a failed rename).
_TMP_COUNTER = itertools.count()


class CellCache:
    """A content-addressed store of (predictions, runtime cost) per cell key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Number of corrupt entries moved aside by :meth:`get` so far.
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:32]
        return self.directory / f"{digest}.npz"

    def get(self, key: str) -> tuple[np.ndarray, RuntimeCost] | None:
        """Look up a cell; returns None on miss or (quarantined) corrupt entry."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                stored_key = str(archive["key"])
                predictions = archive["predictions"]
                cost = RuntimeCost(
                    training_s=float(archive["training_s"]),
                    inference_s=float(archive["inference_s"]),
                )
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            self._quarantine(path)
            return None
        if stored_key != key:  # hash collision (astronomically unlikely)
            return None
        return predictions, cost

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry into ``corrupt/`` so it stops shadowing
        the key and stays available for post-mortems."""
        corrupt_dir = self.directory / "corrupt"
        try:
            corrupt_dir.mkdir(exist_ok=True)
            os.replace(path, corrupt_dir / path.name)
        except OSError:  # e.g. raced with another process; best effort
            pass
        self.quarantined += 1

    def put(self, key: str, predictions: np.ndarray, cost: RuntimeCost) -> None:
        """Store a cell's predictions and measured runtime (atomically).

        Safe under concurrent writers: the temp name is unique per process
        and call, and the final ``os.replace`` is atomic, so parallel workers
        racing on the same key each install a complete entry.
        """
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}-{next(_TMP_COUNTER)}.tmp")
        try:
            # np.savez appends ".npz" to bare names, so hand it a file object.
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    key=np.str_(key),
                    predictions=np.asarray(predictions),
                    training_s=np.float64(cost.training_s),
                    inference_s=np.float64(cost.inference_s),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz"))

    def clear(self) -> None:
        """Delete every cached cell (leftover temp files included).

        Tolerates concurrent clears/writers: entries that vanish between the
        directory listing and the unlink are simply skipped.
        """
        for path in self.directory.glob("*.npz"):
            path.unlink(missing_ok=True)
        for path in self.directory.glob("*.npz.*tmp"):
            path.unlink(missing_ok=True)
