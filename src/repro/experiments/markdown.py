"""Markdown rendering of study results.

Companion to :mod:`repro.experiments.report` (plain text): renders the same
structures as GitHub-flavoured Markdown tables, for dropping straight into
EXPERIMENTS.md-style documents.
"""

from __future__ import annotations

from ..metrics.overhead import OverheadResult
from ..metrics.stats import MeanWithCI
from ..mitigation.registry import TECHNIQUE_ABBREVIATIONS
from .study import ADPanel

__all__ = ["panel_to_markdown", "table4_to_markdown", "overheads_to_markdown"]


def _cell(point: MeanWithCI) -> str:
    if point.half_width > 0:
        return f"{point.mean:.1%} ± {point.half_width:.1%}"
    return f"{point.mean:.1%}"


def panel_to_markdown(panel: ADPanel) -> str:
    """One figure panel as a Markdown table (techniques × fault rates)."""
    rates = next(iter(panel.series.values())).rates if panel.series else []
    header = "| Technique | " + " | ".join(f"{round(r * 100)}%" for r in rates) + " |"
    divider = "|---" * (len(rates) + 1) + "|"
    lines = [f"**{panel.title}**", "", header, divider]
    for technique, series in panel.series.items():
        cells = " | ".join(_cell(p) for p in series.points)
        lines.append(f"| {TECHNIQUE_ABBREVIATIONS.get(technique, technique)} | {cells} |")
    return "\n".join(lines)


def table4_to_markdown(
    table: dict[tuple[str, str, str], MeanWithCI],
    models: tuple[str, ...],
    datasets: tuple[str, ...],
    techniques: list[str],
) -> str:
    """Golden-accuracy grid as a Markdown table (paper Table IV layout)."""
    header = (
        "| Model | Dataset | "
        + " | ".join(TECHNIQUE_ABBREVIATIONS.get(t, t) for t in techniques)
        + " |"
    )
    divider = "|---" * (len(techniques) + 2) + "|"
    lines = [header, divider]
    for model in models:
        for dataset in datasets:
            cells = []
            means = {
                t: table[(model, dataset, t)].mean
                for t in techniques
                if (model, dataset, t) in table
            }
            best = max(means.values()) if means else None
            for technique in techniques:
                key = (model, dataset, technique)
                if key not in table:
                    cells.append("—")
                    continue
                value = table[key].mean
                text = f"{value:.0%}"
                cells.append(f"**{text}**" if best is not None and value == best else text)
            lines.append(f"| {model} | {dataset} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def overheads_to_markdown(overheads: dict[str, OverheadResult]) -> str:
    """Overhead multipliers as a Markdown table (paper §IV-E layout)."""
    lines = ["| Technique | Training | Inference |", "|---|---|---|"]
    for technique, result in overheads.items():
        lines.append(
            f"| {TECHNIQUE_ABBREVIATIONS.get(technique, technique)} | "
            f"{result.training_overhead:.2f}× | {result.inference_overhead:.2f}× |"
        )
    return "\n".join(lines)
