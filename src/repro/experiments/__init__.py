"""``repro.experiments`` — the study harness (Fig. 2 workflow + table/figure drivers)."""

from .config import SCALES, ExperimentConfig, ScaleSettings, resolve_scale
from .markdown import overheads_to_markdown, panel_to_markdown, table4_to_markdown
from .persistence import load_results, result_from_dict, result_to_dict, save_results
from .report import (
    render_combined_verdicts,
    render_motivating_example,
    render_overheads,
    render_panel,
    render_panels,
    render_table4,
)
from .runner import ExperimentResult, ExperimentRunner
from .study import (
    DEFAULT_FAULT_RATES,
    FIG3_MODELS,
    ADPanel,
    ADSeries,
    CombinedFaultVerdict,
    MotivatingExampleResult,
    ad_panel,
    combined_fault_analysis,
    fig3_panels,
    fig4_panels,
    full_study,
    golden_accuracy_table,
    motivating_example,
    overhead_table,
)

__all__ = [
    "ScaleSettings",
    "SCALES",
    "resolve_scale",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentResult",
    "FIG3_MODELS",
    "DEFAULT_FAULT_RATES",
    "ADSeries",
    "ADPanel",
    "ad_panel",
    "fig3_panels",
    "fig4_panels",
    "golden_accuracy_table",
    "full_study",
    "overhead_table",
    "combined_fault_analysis",
    "CombinedFaultVerdict",
    "motivating_example",
    "MotivatingExampleResult",
    "render_table4",
    "render_panel",
    "render_panels",
    "render_overheads",
    "render_combined_verdicts",
    "render_motivating_example",
    "result_to_dict",
    "result_from_dict",
    "save_results",
    "load_results",
    "panel_to_markdown",
    "table4_to_markdown",
    "overheads_to_markdown",
]
