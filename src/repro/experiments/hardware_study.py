"""Cross-axis hardware-fault study — do data-fault mitigations buy SDC robustness?

The paper's question is "which technique mitigates faulty *training data*";
this driver asks the orthogonal one: when a model trained under a data-fault
mitigation is later hit by *hardware* faults at inference time, does the
mitigation also reduce silent data corruption?  The grid crosses

    datasets × models × techniques × data-fault labels × hw fault configs,

plans one :class:`~repro.faults.hardware.campaign.HardwareCampaignUnit` per
cell (validated at plan time, before any training), and runs them through
:func:`~repro.faults.hardware.campaign.run_campaign` — checkpoint/resume,
``--jobs N`` fan-out, and merged telemetry traces included.  The rendered
table and the ``BENCH_hardware_faults.json`` payload are the CLI's
``repro-study hardware-faults`` output.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

from ..faults.hardware.campaign import (
    HardwareCampaignResult,
    HardwareCampaignUnit,
    run_campaign,
)
from ..faults.hardware.spec import FaultTarget, HardwareFaultType
from ..faults.spec import spec_from_label
from ..mitigation.registry import validate_techniques
from ..models.registry import model_names
from .config import ScaleSettings, resolve_scale

__all__ = [
    "plan_hardware_study",
    "hardware_fault_study",
    "render_hardware_table",
    "hardware_campaign_payload",
]


def plan_hardware_study(
    models: tuple[str, ...] = ("convnet",),
    datasets: tuple[str, ...] = ("gtsrb",),
    techniques: tuple[str, ...] = ("baseline", "label_smoothing"),
    data_faults: tuple[str, ...] = ("none", "mislabelling@30%"),
    hw_types: tuple[str, ...] = ("bit_flip",),
    targets: tuple[str, ...] = ("activation",),
    hw_rates: tuple[float, ...] = (1e-4, 1e-3),
    trials: int = 3,
    tensor_probability: float = 1.0,
    bit: "int | None" = None,
    scale: "ScaleSettings | str | None" = None,
) -> list[HardwareCampaignUnit]:
    """Plan the cross-axis grid; fails fast on any invalid name or label.

    Deterministic nested-loop order (dataset ▸ model ▸ technique ▸ data
    fault ▸ hw type ▸ target ▸ rate), so unit keys, trial seeds, and result
    ordering are identical everywhere the same arguments are given.
    """
    if not isinstance(scale, ScaleSettings):
        scale = resolve_scale(scale)
    validate_techniques(list(techniques))
    known_models = model_names(include_extensions=True)
    unknown = [m for m in models if m not in known_models]
    if unknown:
        raise KeyError(f"unknown model(s) {unknown}; choices: {known_models}")
    for label in data_faults:
        spec_from_label(label)  # raises on bad labels; "none" is allowed
    hw_type_values = [HardwareFaultType(t).value for t in hw_types]
    target_values = [FaultTarget(t).value for t in targets]

    units = []
    for dataset in datasets:
        for model in models:
            for technique in techniques:
                for data_fault in data_faults:
                    for hw_type in hw_type_values:
                        for target in target_values:
                            for rate in hw_rates:
                                units.append(HardwareCampaignUnit(
                                    dataset=dataset,
                                    model=model,
                                    scale=scale,
                                    technique=technique,
                                    data_fault=data_fault,
                                    hw_type=hw_type,
                                    target=target,
                                    rate=rate,
                                    tensor_probability=tensor_probability,
                                    bit=bit,
                                    trials=trials,
                                ))
    return units


def hardware_fault_study(
    models: tuple[str, ...] = ("convnet",),
    datasets: tuple[str, ...] = ("gtsrb",),
    techniques: tuple[str, ...] = ("baseline", "label_smoothing"),
    data_faults: tuple[str, ...] = ("none", "mislabelling@30%"),
    hw_types: tuple[str, ...] = ("bit_flip",),
    targets: tuple[str, ...] = ("activation",),
    hw_rates: tuple[float, ...] = (1e-4, 1e-3),
    trials: int = 3,
    tensor_probability: float = 1.0,
    bit: "int | None" = None,
    scale: "ScaleSettings | str | None" = None,
    jobs: int = 1,
    checkpoint: "str | os.PathLike | None" = None,
    trace: "str | os.PathLike | None" = None,
    progress: "Callable[[HardwareCampaignResult], None] | None" = None,
) -> list[HardwareCampaignResult]:
    """Plan and run the cross-axis study; returns results in plan order."""
    units = plan_hardware_study(
        models=models, datasets=datasets, techniques=techniques,
        data_faults=data_faults, hw_types=hw_types, targets=targets,
        hw_rates=hw_rates, trials=trials,
        tensor_probability=tensor_probability, bit=bit, scale=scale,
    )
    return run_campaign(
        units, jobs=jobs, checkpoint=checkpoint, trace=trace, progress=progress
    )


def render_hardware_table(results: Iterable[HardwareCampaignResult]) -> str:
    """Fixed-width results table: one row per campaign unit.

    Columns: the cell identity, the hardware-fault spec, clean accuracy,
    faulty accuracy with its 95 % CI half-width, SDC rate with CI, and the
    accuracy drop — the quantity the cross-axis question is about.
    """
    rows = [(
        "cell (dataset/model/technique/data-fault)", "hw fault",
        "clean", "faulty ±ci", "sdc ±ci", "drop",
    )]
    for r in results:
        cell = f"{r.dataset}/{r.model}/{r.technique}/{r.data_fault}"
        fa, sdc = r.faulty_accuracy, r.sdc_rate
        rows.append((
            cell, r.spec_label, f"{r.clean_accuracy:.3f}",
            f"{fa.mean:.3f} ±{fa.half_width:.3f}",
            f"{sdc.mean:.3f} ±{sdc.half_width:.3f}",
            f"{r.accuracy_drop:+.3f}",
        ))
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def hardware_campaign_payload(
    results: Iterable[HardwareCampaignResult], scale_name: str = ""
) -> dict:
    """JSON payload for ``BENCH_hardware_faults.json`` artifacts.

    Carries both the raw per-trial rows (so a re-run can be compared exactly
    — the reproducibility acceptance gate) and the aggregate summaries the
    CI smoke job and notebooks read.
    """
    results = list(results)
    return {
        "benchmark": "hardware_faults",
        "scale": scale_name,
        "units": len(results),
        "results": [r.to_dict() for r in results],
        "summary": [
            {
                "key": r.key,
                "clean_accuracy": round(r.clean_accuracy, 6),
                "faulty_accuracy": round(r.faulty_accuracy.mean, 6),
                "sdc_rate": round(r.sdc_rate.mean, 6),
                "accuracy_drop": round(r.accuracy_drop, 6),
            }
            for r in results
        ],
    }
