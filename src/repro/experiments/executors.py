"""Study execution — schedule WorkUnits serially or across processes.

The *schedule/execute/collect* stages of the experiments pipeline
(:mod:`repro.experiments.plan` is the *plan* stage):

- :class:`Executor` — the scheduling protocol: ``map(units, settings)``
  yields ``(index, CellOutcome)`` pairs as cells finish.  Every future scale
  direction (sharding, distributed workers, async collection) is a new
  Executor, not a rewrite of the drivers.
- :class:`SerialExecutor` — in-process, in-order execution (the default);
  reuses a caller-supplied :class:`~repro.experiments.runner.ExperimentRunner`
  so golden models and datasets stay memoized exactly as before.
- :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out (``--jobs N``).  Each worker process keeps one runner per
  (scale fingerprint, cache dir), so golden models are trained at most once
  per worker and shared across that worker's cells.
- :func:`run_study_plan` — the collector: skips journaled cells, streams the
  rest through the executor, and appends results to the checkpoint from the
  parent process only (a single writer, so worker results never interleave
  journal records).

Resilience (PR 1's checkpoint/retry/quarantine machinery) composes as
middleware around any executor: each unit runs under
:func:`~repro.experiments.resilience.run_cell_with_retry` *inside* its worker
(so learning-rate halving and reseeding happen next to the training loop),
and the collector records successes/failures exactly as the serial driver
always did.  Grid results are deterministic per unit — not per schedule — so
serial and parallel sweeps produce identical payloads (wall-clock timings
aside) and a resumed sweep re-runs nothing.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

from ..log import get_logger
from ..telemetry import (
    FileTelemetry,
    NULL,
    MetricsRegistry,
    NullTelemetry,
    RecordingTelemetry,
    Telemetry,
    get_metrics,
    metrics_scope,
    telemetry_scope,
)
from .config import scale_fingerprint
from .plan import WorkUnit
from .resilience import (
    CellFailure,
    CellOutcome,
    RetryPolicy,
    StudyCheckpoint,
    StudyReport,
    run_cell_with_retry,
)
from .runner import ExperimentResult, ExperimentRunner

logger = get_logger("experiments.executors")

__all__ = [
    "ExecutionSettings",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_unit",
    "run_study_plan",
]


@dataclass(frozen=True)
class ExecutionSettings:
    """Per-sweep knobs shipped to every worker alongside its units."""

    retry: "RetryPolicy | None" = None
    #: Disk cache directory for trained cells; ``None`` defers to the
    #: ``REPRO_CACHE_DIR`` environment variable (inherited by workers).
    cache_dir: "str | None" = None
    #: Record per-unit telemetry batches onto each
    #: :class:`~repro.experiments.resilience.CellOutcome` (see
    #: :func:`execute_unit`); the collector merges them into the trace file.
    trace: bool = False
    #: Snapshot per-unit live metrics onto each ``CellOutcome`` — the same
    #: funnel as ``trace``, merged into the collector's registry so a
    #: ``--jobs N`` sweep aggregates to the same totals as a serial one.
    metrics: bool = False
    #: Kernel mode the collector ran under (``fast``/``compiled``/…).
    #: In-process and forked workers inherit the mode implicitly; cluster
    #: workers on other hosts replay it from here so every executor trains
    #: with identical kernels.  ``None`` = leave the worker's mode alone.
    kernels: "str | None" = None
    #: Data-parallel shard count for each cell's training loops (see
    #: :mod:`repro.nn.allreduce`); shipped to workers like ``kernels``.
    #: ``None`` = leave the worker's setting alone.
    ddp: "int | None" = None


def execute_unit(
    runner: ExperimentRunner,
    unit: WorkUnit,
    retry: "RetryPolicy | None" = None,
    trace: bool = False,
    metrics: bool = False,
) -> CellOutcome:
    """Run one unit on ``runner`` under the retry middleware; never raises
    (interrupts excepted) — failures degrade to a recorded
    :class:`~repro.experiments.resilience.CellFailure`.

    With ``trace=True`` the whole cell runs under a scoped
    :class:`~repro.telemetry.RecordingTelemetry`, wrapped in a ``unit`` span;
    the recorded batch rides back on ``outcome.events``.  Serial and worker
    execution share this exact path, so traces are structurally identical
    regardless of the executor (the collector re-parents each batch onto its
    study span).

    With ``metrics=True`` the cell additionally runs under an enabled
    metrics registry (the installed process-global one if any — the serial
    case — else a fresh per-unit registry, the worker case after fork) and
    its snapshot rides back on ``outcome.metrics`` for the collector to
    merge.  Snapshot-then-merge of the collector's own registry is an
    identity, so serial and ``--jobs N`` sweeps aggregate identically.
    """
    recorder = RecordingTelemetry() if trace else NULL

    def _run() -> CellOutcome:
        return run_cell_with_retry(
            runner,
            unit.dataset,
            unit.model,
            unit.technique,
            unit.fault,
            policy=retry,
            key=unit.key,
            repeats=unit.repeats,
            technique_kwargs=dict(unit.technique_kwargs) or None,
            clean_fraction=unit.clean_fraction,
        )

    def _run_traced() -> CellOutcome:
        if not trace:
            return _run()
        with telemetry_scope(recorder):
            with recorder.span(
                "unit", key=unit.key, dataset=unit.dataset, model=unit.model,
                technique=unit.technique, fault=unit.fault_label, rate=unit.rate,
            ) as span:
                outcome = _run()
                if not outcome.ok:
                    span.set(outcome="failed")
        return outcome

    if not metrics:
        outcome = _run_traced()
    else:
        registry = get_metrics()
        if not registry.enabled:
            registry = MetricsRegistry()
        with metrics_scope(registry):
            outcome = _run_traced()
        outcome.metrics = registry.snapshot_and_reset()
    if trace:
        outcome.events = recorder.drain()
    outcome.pid = os.getpid()
    outcome.host = socket.gethostname()
    return outcome


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

#: One runner per (scale fingerprint, cache dir) per worker process, so a
#: worker trains each golden model at most once across all its units.
_WORKER_RUNNERS: dict[tuple[str, "str | None"], ExperimentRunner] = {}


def _worker_runner(unit: WorkUnit, settings: ExecutionSettings) -> ExperimentRunner:
    key = (scale_fingerprint(unit.scale), settings.cache_dir)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = ExperimentRunner(unit.scale, cache_dir=settings.cache_dir)
        _WORKER_RUNNERS[key] = runner
    return runner


def _apply_worker_settings(settings: ExecutionSettings) -> None:
    """Replay the collector's training knobs inside a worker process.

    Forked pool workers inherit them implicitly (so this is an idempotent
    no-op there); spawned pools and cluster workers on other hosts start
    from interpreter defaults and need the explicit replay.
    """
    from ..nn.allreduce import set_ddp
    from ..nn.functional import set_kernel_mode

    if settings.kernels is not None:
        set_kernel_mode(settings.kernels)
    if settings.ddp is not None:
        set_ddp(settings.ddp)


def _execute_unit_in_worker(unit: WorkUnit, settings: ExecutionSettings) -> CellOutcome:
    """Top-level (hence picklable) entry point run inside pool workers."""
    _apply_worker_settings(settings)
    return execute_unit(
        _worker_runner(unit, settings), unit, settings.retry,
        trace=settings.trace, metrics=settings.metrics,
    )


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

@runtime_checkable
class Executor(Protocol):
    """Schedules WorkUnits and streams their outcomes back.

    ``map`` yields ``(index, outcome)`` pairs — ``index`` into the submitted
    unit list — in *completion* order; the collector reorders into plan
    order, so executors are free to schedule however they like.
    """

    jobs: int

    def map(
        self, units: "list[WorkUnit]", settings: ExecutionSettings
    ) -> Iterator[tuple[int, CellOutcome]]: ...


class SerialExecutor:
    """In-process, in-order execution — the default and PR-1-equivalent path.

    Pass ``runner`` to reuse an existing runner's in-memory caches (golden
    models, datasets, ensemble fits); otherwise one is built from the first
    unit's scale.
    """

    jobs = 1

    def __init__(self, runner: "ExperimentRunner | None" = None) -> None:
        self.runner = runner

    def map(
        self, units: "list[WorkUnit]", settings: ExecutionSettings
    ) -> Iterator[tuple[int, CellOutcome]]:
        units = list(units)
        if not units:
            return
        runner = self.runner
        if runner is None:
            runner = ExperimentRunner(units[0].scale, cache_dir=settings.cache_dir)
        for index, unit in enumerate(units):
            yield index, execute_unit(
                runner, unit, settings.retry,
                trace=settings.trace, metrics=settings.metrics,
            )


class ParallelExecutor:
    """Process-pool execution: ``jobs`` worker processes, one cell per task.

    Grid cells are embarrassingly parallel (each trains its own models from
    a unit-derived seed), so workers need no coordination; outcomes stream
    back in completion order and the collector reassembles plan order.
    ``mp_context`` picks the multiprocessing start method (``"fork"``,
    ``"spawn"``, ``"forkserver"``; ``None`` = platform default).
    """

    def __init__(self, jobs: int, mp_context: "str | None" = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1; got {jobs}")
        self.jobs = jobs
        self.mp_context = mp_context

    def map(
        self, units: "list[WorkUnit]", settings: ExecutionSettings
    ) -> Iterator[tuple[int, CellOutcome]]:
        units = list(units)
        if not units:
            return
        ctx = multiprocessing.get_context(self.mp_context) if self.mp_context else None
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(units)), mp_context=ctx)
        try:
            futures = {
                pool.submit(_execute_unit_in_worker, unit, settings): index
                for index, unit in enumerate(units)
            }
            for future in as_completed(futures):
                yield futures[future], future.result()
        finally:
            # Cancel not-yet-started cells on early exit (e.g. Ctrl-C) so the
            # sweep stops after in-flight cells instead of draining the queue.
            pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# The collector
# ----------------------------------------------------------------------

def run_study_plan(
    plan: Iterable[WorkUnit],
    executor: "Executor | None" = None,
    checkpoint: "StudyCheckpoint | str | os.PathLike | None" = None,
    retry: "RetryPolicy | None" = None,
    progress: "Callable[[ExperimentResult], None] | None" = None,
    on_failure: "Callable[[CellFailure], None] | None" = None,
    cache_dir: "str | None" = None,
    trace: "Telemetry | str | os.PathLike | None" = None,
    on_outcome: "Callable[[int, WorkUnit, CellOutcome], None] | None" = None,
) -> StudyReport:
    """Execute a plan and collect a :class:`StudyReport` in plan order.

    The resilience middleware stack, composed with *any* executor:

    1. **skip-completed** — units whose key is already journaled replay from
       the checkpoint without retraining (``progress`` fires immediately);
    2. **retry** — pending units run under ``retry`` inside their worker
       (reseed + learning-rate halving on divergence);
    3. **record** — the parent process is the checkpoint's single writer:
       worker outcomes are journaled here, serially, as they arrive.

    ``report.results`` is ordered by plan position regardless of completion
    order; ``progress``/``on_failure``/``on_outcome`` fire in completion
    order (``on_outcome`` sees *every* cell — replayed, succeeded, or failed
    — as ``(plan index, unit, outcome)``; the live
    :class:`~repro.telemetry.ProgressReporter` plugs in here).

    ``trace`` (a path, or an open :class:`~repro.telemetry.Telemetry`)
    enables study telemetry: each unit executes under a recording handle in
    its worker, the batch rides back on the outcome, and this function —
    the single writer — merges batches into one ordered JSONL trace wrapped
    in a ``study`` span, with ``checkpoint_skip`` counters for replayed
    cells.  Serial and parallel sweeps therefore produce structurally
    identical traces.
    """
    plan = list(plan)
    executor = executor or SerialExecutor()

    tel: "Telemetry | NullTelemetry" = NULL
    owns_trace = False
    if isinstance(trace, (Telemetry, NullTelemetry)):
        tel = trace
    elif trace is not None:
        tel = FileTelemetry(trace)
        owns_trace = True
    from ..nn.allreduce import get_ddp
    from ..nn.functional import kernel_mode

    settings = ExecutionSettings(
        retry=retry, cache_dir=cache_dir, trace=tel.enabled,
        metrics=get_metrics().enabled,
        kernels=kernel_mode(), ddp=get_ddp(),
    )

    ckpt = checkpoint
    if ckpt is not None and not isinstance(ckpt, StudyCheckpoint):
        fingerprint = scale_fingerprint(plan[0].scale) if plan else None
        ckpt = StudyCheckpoint(ckpt, fingerprint=fingerprint)

    outcomes: dict[int, CellOutcome] = {}
    try:
        with tel.span("study", cells=len(plan), jobs=executor.jobs) as study_span:
            pending: list[tuple[int, WorkUnit]] = []
            for index, unit in enumerate(plan):
                if ckpt is not None and unit.key in ckpt:
                    outcome = CellOutcome(
                        result=ckpt.completed[unit.key], from_checkpoint=True
                    )
                    outcomes[index] = outcome
                    tel.counter("checkpoint_skip", key=unit.key)
                    if on_outcome is not None:
                        on_outcome(index, unit, outcome)
                    if progress is not None:
                        progress(outcome.result)
                else:
                    pending.append((index, unit))

            if pending:
                logger.debug(
                    "executing %d/%d cells (%d replayed) on %s with %d job(s)",
                    len(pending), len(plan), len(plan) - len(pending),
                    type(executor).__name__, executor.jobs,
                )
                plan_indices = [index for index, _ in pending]
                # Executors with coordinator-side telemetry (lease expiries,
                # lost workers — events that belong to no single outcome)
                # expose a ``drain_events`` hook; the collector, as the
                # trace's single writer, merges those batches too.
                drain = getattr(executor, "drain_events", None)
                for local_index, outcome in executor.map(
                    [unit for _, unit in pending], settings
                ):
                    index = plan_indices[local_index]
                    outcomes[index] = outcome
                    if drain is not None:
                        coordinator_events = drain()
                        if coordinator_events:
                            tel.write_batch(coordinator_events, parent=study_span.id)
                    if outcome.events:
                        tel.write_batch(outcome.events, parent=study_span.id)
                    if outcome.metrics:
                        get_metrics().merge(outcome.metrics)
                    if on_outcome is not None:
                        on_outcome(index, plan[index], outcome)
                    if outcome.ok:
                        if ckpt is not None:
                            ckpt.record_success(plan[index].key, outcome.result)
                        if progress is not None:
                            progress(outcome.result)
                    else:
                        if ckpt is not None:
                            ckpt.record_failure(outcome.failure)
                        if on_failure is not None:
                            on_failure(outcome.failure)
                if drain is not None:
                    coordinator_events = drain()
                    if coordinator_events:
                        tel.write_batch(coordinator_events, parent=study_span.id)

            if get_metrics().enabled:
                tel.event("metrics_snapshot", metrics=get_metrics().snapshot())
    finally:
        if owns_trace:
            tel.close()

    report = StudyReport()
    for index in range(len(plan)):
        outcome = outcomes[index]
        if outcome.ok:
            report.results.append(outcome.result)
            if outcome.from_checkpoint:
                report.replayed += 1
            else:
                report.executed += 1
        else:
            report.failures.append(outcome.failure)
    return report
