"""Trace files — reading, validating, and structuring JSONL event streams.

The collector (:func:`~repro.experiments.executors.run_study_plan`) is a
single writer, so a merged trace is properly nested in *file order*: a span's
events (and its funneled children) all land between its ``span_start`` and
``span_end`` lines.  That property is what :func:`validate_trace` checks and
what :func:`span_tree` exploits to rebuild the hierarchy without clocks.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "TraceError",
    "SpanNode",
    "read_trace",
    "repair_trace",
    "validate_trace",
    "span_tree",
    "hierarchy_signature",
]

#: Span names whose *subtrees* are schedule-dependent by design: golden
#: models are memoized per process, so whether a unit trains one depends on
#: which worker ran it first.  Cross-schedule comparisons exclude them.
SCHEDULE_DEPENDENT_SPANS = ("golden_fit",)


class TraceError(ValueError):
    """A trace file or event stream violates the trace format."""


def read_trace(path: str | os.PathLike, strict: bool = True) -> list[dict]:
    """Load a JSONL trace file into a list of event dicts.

    A torn *final* line (a sweep killed mid-write) is always tolerated and
    dropped.  In strict mode (the default) a malformed line anywhere else
    raises :class:`TraceError`; with ``strict=False`` the readable prefix up
    to the first malformed line is returned instead — the right behavior
    for summarizing what a killed or disk-full sweep did manage to record.
    Pair with :func:`repair_trace` to close any spans the truncation left
    open.
    """
    lines = Path(path).read_text().splitlines()
    events: list[dict] = []
    last_index = len(lines) - 1
    for index, raw in enumerate(lines):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError:
            if index == last_index or not strict:
                break
            raise TraceError(f"{path}:{index + 1}: malformed trace line") from None
        if not isinstance(event, dict) or "ev" not in event:
            if not strict:
                break
            raise TraceError(f"{path}:{index + 1}: not a trace event")
        events.append(event)
    return events


def repair_trace(events: list[dict]) -> tuple[list[dict], list[str]]:
    """Close any spans a truncated stream left open; return (events, warnings).

    Walks the stream with the same single-writer stack discipline as
    :func:`validate_trace`, drops any tail ``span_end`` that no longer
    matches an open span, and synthesizes ``span_end`` events (tagged
    ``outcome: "truncated"``, ``dur_s: 0``) for spans still open at the end
    of file, innermost first.  The result always passes
    :func:`validate_trace`; the warnings name what was repaired.
    """
    repaired: list[dict] = []
    stack: list[dict] = []
    warnings: list[str] = []
    for event in events:
        kind = event.get("ev")
        if kind == "span_start":
            stack.append(event)
        elif kind == "span_end":
            if not stack or stack[-1].get("span") != event.get("span"):
                warnings.append(
                    f"dropped span_end for {event.get('name')!r} "
                    f"({event.get('span')}): no matching open span"
                )
                continue
            stack.pop()
        repaired.append(event)
    for start in reversed(stack):
        warnings.append(
            f"synthesized span_end for truncated span {start.get('name')!r} "
            f"({start.get('span')})"
        )
        repaired.append({
            "ev": "span_end",
            "name": start.get("name", ""),
            "span": start.get("span"),
            "t": start.get("t", 0.0),
            "dur_s": 0.0,
            "outcome": "truncated",
            "pid": start.get("pid"),
        })
    return repaired, warnings


def validate_trace(events: list[dict]) -> dict:
    """Check span pairing and nesting; return summary stats.

    Verifies every ``span_end`` matches the innermost open span (single-writer
    traces are properly nested in file order) and that the stream ends with
    no span left open.  Returns ``{"events": n, "spans": n, "pids": n}``.
    """
    stack: list[tuple[str, str]] = []
    spans = 0
    pids: set = set()
    for index, event in enumerate(events):
        kind = event.get("ev")
        pids.add(event.get("pid"))
        if kind == "span_start":
            stack.append((event["span"], event.get("name", "")))
        elif kind == "span_end":
            if not stack:
                raise TraceError(f"event {index}: span_end without open span")
            open_id, open_name = stack.pop()
            if event["span"] != open_id:
                raise TraceError(
                    f"event {index}: span_end for {event.get('name')!r} "
                    f"({event['span']}) but innermost open span is "
                    f"{open_name!r} ({open_id})"
                )
            spans += 1
        elif kind not in ("counter", "gauge", "event"):
            raise TraceError(f"event {index}: unknown event kind {kind!r}")
    if stack:
        names = [name for _, name in stack]
        raise TraceError(f"unbalanced trace: spans left open: {names}")
    return {"events": len(events), "spans": spans, "pids": len(pids)}


@dataclass
class SpanNode:
    """One span in a reconstructed trace tree."""

    name: str
    span: str
    attrs: dict = field(default_factory=dict)
    dur_s: float = 0.0
    children: "list[SpanNode]" = field(default_factory=list)

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


_RESERVED = frozenset({"ev", "name", "span", "parent", "t", "wall", "pid", "dur_s", "value"})


def span_tree(events: list[dict]) -> list[SpanNode]:
    """Rebuild the span hierarchy from a validated event stream.

    Returns the root spans in file order; ``span_end`` attributes (losses,
    outcomes) are merged into each node's ``attrs``.
    """
    nodes: dict[str, SpanNode] = {}
    roots: list[SpanNode] = []
    for event in events:
        kind = event.get("ev")
        if kind == "span_start":
            node = SpanNode(
                name=event.get("name", ""),
                span=event["span"],
                attrs={k: v for k, v in event.items() if k not in _RESERVED},
            )
            nodes[node.span] = node
            parent = nodes.get(event.get("parent"))
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
        elif kind == "span_end":
            node = nodes.get(event["span"])
            if node is not None:
                node.dur_s = float(event.get("dur_s", 0.0))
                node.attrs.update(
                    {k: v for k, v in event.items() if k not in _RESERVED}
                )
    return roots


def hierarchy_signature(
    events: list[dict],
    exclude: tuple[str, ...] = SCHEDULE_DEPENDENT_SPANS,
) -> tuple:
    """A canonical, order-independent signature of a trace's span hierarchy.

    Two sweeps of the same plan — serial or parallel, any completion order —
    produce the same signature: each node reduces to ``(name, sort_key,
    sorted child signatures)``, where the sort key is the unit's journal key
    (or the repetition/epoch/attempt index) so siblings compare in a stable
    order.  Subtrees named in ``exclude`` (schedule-dependent phases like
    memoized golden training) are dropped.
    """

    def signature(node: SpanNode) -> tuple:
        sort_key = node.attrs.get("key") or node.attrs.get("attempt") \
            or node.attrs.get("repetition") or node.attrs.get("epoch") or ""
        children = tuple(sorted(
            signature(child) for child in node.children if child.name not in exclude
        ))
        return (node.name, str(sort_key), children)

    return tuple(sorted(signature(root) for root in span_tree(events)))
