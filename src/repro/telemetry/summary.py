"""Trace summarization — the analysis behind ``repro-study trace <file>``.

Reduces a (possibly multi-hour) trace to the questions an operator actually
asks: where did the wall-clock go per phase, which cells were slowest, how
many retries/divergences/failures happened, how cache-effective was the run,
and how time splits across the technique × dataset grid.
"""

from __future__ import annotations

import os
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from .metrics import histogram_quantile
from .trace import read_trace, repair_trace, span_tree, validate_trace

__all__ = ["TraceSummary", "summarize_trace", "render_trace_summary"]

#: Counter names surfaced in the summary's tally section, in display order.
TALLY_COUNTERS = (
    "retry",
    "cell_failure",
    "checkpoint_skip",
    "cache_hit",
    "cache_miss",
    "golden_cache_hit",
    "golden_cache_miss",
)


@dataclass
class TraceSummary:
    """Aggregated view of one study trace."""

    events: int = 0
    spans: int = 0
    pids: int = 0
    #: span name -> (count, total seconds)
    phase_totals: dict = field(default_factory=dict)
    #: (unit key, seconds) sorted slowest-first
    slowest_units: list = field(default_factory=list)
    #: counter name -> accumulated value
    counters: dict = field(default_factory=dict)
    #: event name -> occurrences (e.g. divergence)
    point_events: dict = field(default_factory=dict)
    #: (technique, dataset) -> total unit seconds
    technique_dataset_s: dict = field(default_factory=dict)
    #: aggregated ``compiled_fit`` events (compiled vs eager step counts,
    #: workspace effectiveness) — empty when no fit ran in compiled mode
    compiled_exec: dict = field(default_factory=dict)
    #: the final ``metrics_snapshot`` event's registry snapshot — empty when
    #: the run had live metrics disabled
    metrics: dict = field(default_factory=dict)
    #: repairs applied while reading a truncated trace (tolerant mode only)
    warnings: list = field(default_factory=list)
    #: total study wall-clock (sum of root span durations)
    total_s: float = 0.0


def summarize_trace(
    source: "str | os.PathLike | list[dict]", top: int = 5, strict: bool = True
) -> TraceSummary:
    """Summarize a trace file (or pre-read event list) into a :class:`TraceSummary`.

    The trace is validated first — a summary of an unbalanced or corrupt
    trace would silently lie about where time went.  With ``strict=False``
    a truncated or corrupt trace (killed sweep) is repaired instead of
    rejected: the readable prefix is summarized, synthesized span ends are
    tagged ``truncated``, and the repairs land in ``summary.warnings``.
    """
    warnings: list[str] = []
    if isinstance(source, list):
        events = source
    else:
        events = read_trace(source, strict=strict)
    if not strict:
        events, warnings = repair_trace(events)
    stats = validate_trace(events)
    summary = TraceSummary(events=stats["events"], spans=stats["spans"], pids=stats["pids"])
    summary.warnings = warnings

    phase_counts: Counter = Counter()
    phase_seconds: defaultdict = defaultdict(float)
    counters: Counter = Counter()
    points: Counter = Counter()
    compiled: Counter = Counter()
    workspace_peak: Counter = Counter()
    for event in events:
        kind = event.get("ev")
        name = event.get("name", "")
        if kind == "span_end":
            phase_counts[name] += 1
            phase_seconds[name] += float(event.get("dur_s", 0.0))
        elif kind == "counter":
            counters[name] += int(event.get("value", 1))
        elif kind == "event":
            points[name] += 1
            if name == "metrics_snapshot":
                # Snapshots are cumulative per emitting registry; the last
                # one in file order is the run's final state.
                summary.metrics = dict(event.get("metrics", {}))
            if name == "compiled_fit":
                for field_name in (
                    "compiled_steps",
                    "eager_steps",
                    "tap_fallback_steps",
                    "compiles",
                    "compile_fallbacks",
                ):
                    compiled[field_name] += int(event.get(field_name, 0))
                # Workspace counters are cumulative per thread, so across
                # fits the *latest* value is the total — keep the max.
                for field_name in ("workspace_hits", "workspace_misses", "workspace_dropped"):
                    workspace_peak[field_name] = max(
                        workspace_peak[field_name], int(event.get(field_name, 0))
                    )
    summary.phase_totals = {
        name: (phase_counts[name], phase_seconds[name]) for name in phase_counts
    }
    summary.counters = dict(counters)
    summary.point_events = dict(points)
    if compiled or workspace_peak:
        summary.compiled_exec = {**compiled, **workspace_peak}

    units: list[tuple[str, float]] = []
    tech_dataset: defaultdict = defaultdict(float)
    for root in span_tree(events):
        summary.total_s += root.dur_s
        for node in root.walk():
            if node.name != "unit":
                continue
            units.append((str(node.attrs.get("key", "?")), node.dur_s))
            cell = (str(node.attrs.get("technique", "?")), str(node.attrs.get("dataset", "?")))
            tech_dataset[cell] += node.dur_s
    summary.slowest_units = sorted(units, key=lambda kv: kv[1], reverse=True)[:top]
    summary.technique_dataset_s = dict(tech_dataset)
    return summary


def _render_metric_line(name: str, snap: dict) -> str:
    kind = snap.get("type")
    if kind == "histogram":
        count = snap.get("count", 0)
        if not count:
            return f"  {name:<34} histogram  empty"
        mean = snap["sum"] / count
        vmin = snap.get("min") or 0.0
        vmax = snap.get("max") or 0.0
        quantiles = " ".join(
            f"p{int(q * 100)}={histogram_quantile(tuple(snap['buckets']), snap['counts'], count, vmin, vmax, q):.6g}"
            for q in (0.5, 0.95, 0.99)
        )
        return (
            f"  {name:<34} histogram  count={count} mean={mean:.6g} {quantiles}"
        )
    return f"  {name:<34} {kind:<9}  {snap.get('value', 0):.6g}"


def render_trace_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as the ``repro-study trace`` report."""
    lines = [
        f"trace: {summary.events} events, {summary.spans} spans, "
        f"{summary.pids} process(es), {summary.total_s:.2f}s total",
    ]
    if summary.warnings:
        lines.append("")
        lines.append(f"warnings ({len(summary.warnings)} repairs, truncated trace):")
        for warning in summary.warnings[:5]:
            lines.append(f"  {warning}")
        if len(summary.warnings) > 5:
            lines.append(f"  ... and {len(summary.warnings) - 5} more")
    lines += [
        "",
        "per-phase wall-clock:",
    ]
    for name, (count, seconds) in sorted(
        summary.phase_totals.items(), key=lambda kv: kv[1][1], reverse=True
    ):
        lines.append(f"  {name:<16} {count:>5} spans  {seconds:>9.2f}s")

    tallies = [
        (name, summary.counters[name]) for name in TALLY_COUNTERS if name in summary.counters
    ]
    tallies += sorted(
        (name, count) for name, count in summary.counters.items() if name not in TALLY_COUNTERS
    )
    tallies += sorted(summary.point_events.items())
    if tallies:
        lines.append("")
        lines.append("tallies:")
        for name, count in tallies:
            lines.append(f"  {name:<18} {count:>6}")

    if summary.compiled_exec:
        ce = summary.compiled_exec
        lines.append("")
        lines.append("compiled execution:")
        lines.append(
            f"  steps: {ce.get('compiled_steps', 0)} compiled, "
            f"{ce.get('eager_steps', 0)} eager, "
            f"{ce.get('tap_fallback_steps', 0)} tap-fallback"
        )
        lines.append(
            f"  plans: {ce.get('compiles', 0)} compiled, "
            f"{ce.get('compile_fallbacks', 0)} refused"
        )
        lines.append(
            f"  workspace: {ce.get('workspace_hits', 0)} hits, "
            f"{ce.get('workspace_misses', 0)} misses, "
            f"{ce.get('workspace_dropped', 0)} dropped"
        )

    if summary.metrics:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(summary.metrics):
            lines.append(_render_metric_line(name, summary.metrics[name]))

    if summary.slowest_units:
        lines.append("")
        lines.append("slowest cells:")
        for key, seconds in summary.slowest_units:
            lines.append(f"  {seconds:>8.2f}s  {key}")

    if summary.technique_dataset_s:
        lines.append("")
        lines.append("technique x dataset wall-clock:")
        for (technique, dataset), seconds in sorted(
            summary.technique_dataset_s.items(), key=lambda kv: kv[1], reverse=True
        ):
            lines.append(f"  {technique:<22} {dataset:<12} {seconds:>9.2f}s")
    return "\n".join(lines)
