"""Live metrics — counters, gauges, and bucketed histograms.

Where :mod:`repro.telemetry.events` answers "where did the wall-clock go"
*after* a run (JSONL trace spans), this module answers "what is happening
*right now*": a process-global :class:`MetricsRegistry` of

- :class:`Counter` — monotonically increasing tallies
  (``serve_requests_total``, ``train_steps_total``);
- :class:`Gauge` — last-written instantaneous values (``serve_inflight``);
- :class:`Histogram` — fixed log-spaced buckets with quantile estimation
  from bucket counts (request latency, batch size, queue depth).

Design constraints, in priority order:

1. **Near-zero cost when unused.**  The process default is
   :data:`NULL_METRICS`, whose metric handles are no-op singletons — an
   instrumented call site pays one :func:`get_metrics` lookup and an empty
   method call, exactly the :func:`~repro.telemetry.events.get_telemetry`
   pattern.  ``benchmarks/bench_overhead.py::test_metrics_overhead`` gates
   the disabled path below 2%.
2. **Lock-free hot path.**  ``inc``/``set``/``observe`` are plain int/float
   updates on pre-allocated slots (GIL-serialized); locks guard only
   metric *creation* and cross-process merge.  Snapshots read live values
   without stopping writers — each snapshot is internally consistent per
   metric, not across metrics, which is all a dashboard needs.
3. **Mergeable across workers.**  A worker snapshots (and resets) its
   registry into a plain picklable dict that rides home on
   ``CellOutcome.metrics`` — the same funnel ``RecordingTelemetry`` uses —
   and :meth:`MetricsRegistry.merge` folds it into the collector's
   registry, so a ``--jobs N`` sweep aggregates to the same totals as a
   serial one.

Snapshots render to both JSON (verbatim dict) and Prometheus text
exposition format (:func:`render_prometheus`, served on ``/metrics``);
:func:`parse_prometheus_text` inverts the rendering for round-trip tests
and CI validation.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "metrics_scope",
    "log_buckets",
    "LATENCY_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "histogram_quantile",
    "latency_summary_ms",
    "render_prometheus",
    "parse_prometheus_text",
]


def log_buckets(lo: float, hi: float, per_decade: int = 4) -> tuple[float, ...]:
    """Log-spaced histogram bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per power of ten, rounded to 6 significant digits
    so rendered Prometheus ``le`` labels are stable across platforms.
    """
    if not (0 < lo < hi):
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    steps = int(round(math.log10(hi / lo) * per_decade))
    bounds = [float(f"{lo * 10 ** (i / per_decade):.6g}") for i in range(steps + 1)]
    return tuple(dict.fromkeys(bounds))


#: 10µs … 10s, 4 buckets per decade — request/step latency in seconds.
LATENCY_BUCKETS_S = log_buckets(1e-5, 10.0, per_decade=4)
#: Micro-batch sizes: powers of two up to the plausible ``max_batch``.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
#: Queue depth observed at submit time.
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "help", "_value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}

    def reset(self) -> None:
        self._value = 0

    def merge(self, snap: dict) -> None:
        self._value += snap["value"]


class Gauge:
    """A last-written instantaneous value."""

    __slots__ = ("name", "help", "_value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def add(self, amount: float) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}

    def reset(self) -> None:
        self._value = 0.0

    def merge(self, snap: dict) -> None:
        # Gauges are instantaneous; on merge the incoming (newer) value wins.
        self._value = snap["value"]


class Histogram:
    """Fixed-bucket histogram with quantile estimation from bucket counts.

    ``bounds`` are ascending upper bounds with Prometheus ``le`` (<=)
    semantics; one implicit overflow bucket (``+Inf``) follows.  ``counts``
    are per-bucket (*not* cumulative) so merge is element-wise addition;
    :func:`render_prometheus` re-cumulates for the exposition format.
    Observed ``min``/``max`` are tracked exactly and clamp quantiles, so
    p0/p100 are exact and interior quantiles are within one bucket width.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
                 help: str = "") -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must be strictly ascending: {bounds}")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from bucket counts."""
        return histogram_quantile(self.bounds, self.counts, self.count,
                                  self.min, self.max, q)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def merge(self, snap: dict) -> None:
        if tuple(snap["buckets"]) != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ "
                f"({snap['buckets']} vs {list(self.bounds)})"
            )
        for i, c in enumerate(snap["counts"]):
            self.counts[i] += c
        self.sum += snap["sum"]
        self.count += snap["count"]
        if snap["count"]:
            self.min = min(self.min, snap["min"])
            self.max = max(self.max, snap["max"])


def histogram_quantile(bounds: tuple[float, ...], counts: list[int], total: int,
                       vmin: float, vmax: float, q: float) -> float:
    """Prometheus-style quantile: linear interpolation inside the bucket
    containing rank ``q * total``, clamped to the observed ``[vmin, vmax]``.
    """
    if total == 0:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = q * total
    cumulative = 0.0
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            lo = bounds[i - 1] if i > 0 else vmin
            hi = bounds[i] if i < len(bounds) else vmax
            lo = max(lo, vmin)
            hi = min(hi, vmax)
            if hi <= lo:
                return min(max(lo, vmin), vmax)
            frac = (rank - cumulative) / bucket_count
            return min(max(lo + frac * (hi - lo), vmin), vmax)
        cumulative += bucket_count
    return vmax


def latency_summary_ms(hist: Histogram) -> dict:
    """p50/p95/p99 of a latency histogram (seconds in, milliseconds out).

    The single percentile implementation shared by the live ``/stats``
    endpoint and ``benchmarks/bench_serving.py`` — the acceptance criterion
    that both agree is held by construction.
    """
    return {
        "p50_ms": round(hist.quantile(0.50) * 1e3, 4),
        "p95_ms": round(hist.quantile(0.95) * 1e3, 4),
        "p99_ms": round(hist.quantile(0.99) * 1e3, 4),
    }


class MetricsRegistry:
    """A process-global family of named metrics.

    Metric *creation* (get-or-create by name) takes a lock; the returned
    handles update lock-free.  Call sites should fetch handles once per
    scope (``m = get_metrics().counter("x")``) or per call — both are
    cheap — but must go through :func:`get_metrics` at least once per
    logical scope so scoped swaps and fork safety work.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()

    def _get_or_create(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
                  help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, buckets=buckets, help=help)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> dict:
        """A picklable ``{name: {...}}`` dict of every metric's state."""
        return {m.name: m.snapshot() for m in self.metrics()}

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's snapshot into this registry (creating metrics)."""
        with self._lock:
            for name in sorted(snapshot):
                snap = snapshot[name]
                metric = self._metrics.get(name)
                if metric is None:
                    if snap["type"] == "counter":
                        metric = Counter(name)
                    elif snap["type"] == "gauge":
                        metric = Gauge(name)
                    elif snap["type"] == "histogram":
                        metric = Histogram(name, buckets=tuple(snap["buckets"]))
                    else:
                        raise ValueError(f"unknown metric type {snap['type']!r}")
                    self._metrics[name] = metric
                elif metric.kind != snap["type"]:
                    raise TypeError(
                        f"cannot merge {snap['type']} snapshot into "
                        f"{metric.kind} metric {name!r}"
                    )
                metric.merge(snap)

    def snapshot_and_reset(self) -> dict:
        """Snapshot then zero every metric — the worker-side funnel step."""
        snap = self.snapshot()
        self.reset()
        return snap

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()


class _NullMetric:
    """The reusable do-nothing metric handle."""

    __slots__ = ()
    name = ""
    value = 0
    sum = 0.0
    count = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """The disabled registry: every handle is a shared no-op singleton."""

    enabled = False
    _pid = None

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
                  help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def metrics(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    def merge(self, snapshot: dict) -> None:
        pass

    def snapshot_and_reset(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


#: The shared disabled registry (safe to compare with ``is``).
NULL_METRICS = NullMetrics()

_ACTIVE_METRICS: MetricsRegistry | NullMetrics = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The active metrics registry for *this* process.

    Returns :data:`NULL_METRICS` when none is installed — and also after a
    fork, if the installed registry belongs to the parent process (a forked
    worker must not double-count into the parent's registry; the executor
    installs a fresh one and funnels its snapshot home instead).
    """
    active = _ACTIVE_METRICS
    if active is NULL_METRICS or active._pid == os.getpid():
        return active
    return NULL_METRICS


def set_metrics(registry: MetricsRegistry | NullMetrics | None) -> None:
    """Install (or with ``None``, clear) the process-global registry."""
    global _ACTIVE_METRICS
    _ACTIVE_METRICS = registry if registry is not None else NULL_METRICS


@contextmanager
def metrics_scope(registry: MetricsRegistry | NullMetrics) -> Iterator[MetricsRegistry | NullMetrics]:
    """Temporarily install ``registry`` as the process-global registry."""
    global _ACTIVE_METRICS
    previous = _ACTIVE_METRICS
    _ACTIVE_METRICS = registry
    try:
        yield registry
    finally:
        _ACTIVE_METRICS = previous


# -- Prometheus text exposition format ----------------------------------

def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    Histograms render cumulative ``_bucket{le=...}`` series ending in
    ``+Inf``, plus ``_sum`` and ``_count``; counters and gauges render one
    sample each.  Output ends with a trailing newline per the format spec.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap["type"]
        lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name} {_format_value(snap['value'])}")
        elif kind == "histogram":
            cumulative = 0
            for bound, count in zip(snap["buckets"], snap["counts"]):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            cumulative += snap["counts"][len(snap["buckets"])]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(snap['sum'])}")
            lines.append(f"{name}_count {snap['count']}")
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus_text(text: str) -> dict:
    """Parse Prometheus text exposition back into a snapshot-shaped dict.

    The inverse of :func:`render_prometheus` for the metric shapes this
    module emits (no labels other than histogram ``le``).  Histogram
    ``min``/``max`` are not part of the exposition format and come back as
    ``None``.  Used by the round-trip tests and the CI ``/metrics`` smoke.
    """
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[str | None, float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        le = None
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            label_part = label_part.rstrip("}")
            for label in label_part.split(","):
                key, _, val = label.partition("=")
                if key.strip() == "le":
                    le = val.strip().strip('"')
        else:
            name = name_part
        samples.setdefault(name, []).append((le, _parse_number(value_part)))

    snapshot: dict = {}
    for name, kind in types.items():
        if kind in ("counter", "gauge"):
            values = samples.get(name, [])
            if len(values) != 1:
                raise ValueError(f"{name}: expected one sample, got {len(values)}")
            value = values[0][1]
            if kind == "counter" and float(value).is_integer():
                value = int(value)
            snapshot[name] = {"type": kind, "value": value}
        elif kind == "histogram":
            buckets = [(
                _parse_number(le), int(v)
            ) for le, v in samples.get(f"{name}_bucket", []) if le is not None]
            buckets.sort(key=lambda pair: pair[0])
            if not buckets or buckets[-1][0] != math.inf:
                raise ValueError(f"{name}: histogram missing +Inf bucket")
            bounds = [b for b, _ in buckets[:-1]]
            counts, previous = [], 0
            for _, cum in buckets:
                counts.append(cum - previous)
                previous = cum
            (_, total), = samples.get(f"{name}_count", [(None, 0.0)])
            (_, total_sum), = samples.get(f"{name}_sum", [(None, 0.0)])
            if int(total) != buckets[-1][1]:
                raise ValueError(
                    f"{name}: _count {int(total)} != +Inf bucket {buckets[-1][1]}"
                )
            snapshot[name] = {
                "type": "histogram",
                "buckets": bounds,
                "counts": counts,
                "sum": total_sum,
                "count": int(total),
                "min": None,
                "max": None,
            }
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return snapshot
