"""Live sweep progress — the terminal consumer of study telemetry.

A :class:`ProgressReporter` plugs into the collector's ``on_outcome`` hook
(:func:`~repro.experiments.executors.run_study_plan`) and keeps a running
picture of the sweep: cells done/total, a rolling cells/sec rate with an ETA,
retry and failure tallies, and a per-worker activity line built from each
outcome's originating pid.

On a TTY it repaints one status line in place; on a pipe (CI logs) it prints
one plain line per completed cell, so logs stay grep-able either way.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import IO, TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..experiments.plan import WorkUnit
    from ..experiments.resilience import CellOutcome

__all__ = ["ProgressReporter", "format_eta"]


def format_eta(seconds: "float | None") -> str:
    """``?`` until a rate exists, then ``41s`` / ``3m12s`` / ``2h05m``."""
    if seconds is None:
        return "?"
    seconds = max(0, int(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{seconds % 3600 // 60:02d}m"


class ProgressReporter:
    """Renders live sweep progress from collector outcomes.

    Parameters
    ----------
    total:
        Number of cells in the plan (done/total and ETA denominator).
    stream:
        Where to render (default ``sys.stderr``).
    clock:
        Monotonic time source (injectable for tests).
    window:
        Completions kept for the rolling cells/sec rate — a rolling window
        tracks the *current* pace, so the ETA recovers quickly after a slow
        cold-start cell or a burst of cheap checkpoint replays.
    """

    def __init__(
        self,
        total: int,
        stream: "IO[str] | None" = None,
        clock: Callable[[], float] = time.monotonic,
        window: int = 20,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.done = 0
        self.failures = 0
        self.retries = 0
        self.replayed = 0
        self._completions: deque[float] = deque(maxlen=max(2, window))
        #: (host, pid) -> description of that worker's most recent cell.
        #: Keying by pid alone conflates workers on different machines in a
        #: cluster sweep (pids are only unique per host); ``host`` is ""
        #: for outcomes predating the cluster executor.
        self.worker_activity: dict[tuple[str, int], str] = {}
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())

    # -- statistics ----------------------------------------------------
    def rate_cells_per_s(self) -> "float | None":
        """Rolling completion rate; ``None`` before two completions."""
        if len(self._completions) < 2:
            return None
        elapsed = self._completions[-1] - self._completions[0]
        if elapsed <= 0:
            return None
        return (len(self._completions) - 1) / elapsed

    def eta_s(self) -> "float | None":
        rate = self.rate_cells_per_s()
        if rate is None:
            return None
        return (self.total - self.done) / rate

    # -- collector hook ------------------------------------------------
    def on_outcome(self, index: int, unit: "WorkUnit", outcome: "CellOutcome") -> None:
        """Record one finished cell (success, failure, or checkpoint replay)."""
        self.done += 1
        self._completions.append(self.clock())
        if outcome.ok:
            self.retries += max(0, outcome.attempts - 1)
        else:
            self.failures += 1
            self.retries += max(0, outcome.attempts - 1)
        if outcome.from_checkpoint:
            self.replayed += 1
        if outcome.pid is not None:
            host = getattr(outcome, "host", None) or ""
            self.worker_activity[(host, outcome.pid)] = unit.describe()
        self._render(unit, outcome)

    def __call__(self, index: int, unit: "WorkUnit", outcome: "CellOutcome") -> None:
        self.on_outcome(index, unit, outcome)

    # -- rendering -----------------------------------------------------
    def status_line(self) -> str:
        pct = 100 * self.done // self.total if self.total else 100
        parts = [
            f"[{self.done}/{self.total}] {pct}%",
            f"eta {format_eta(self.eta_s())}",
        ]
        rate = self.rate_cells_per_s()
        if rate is not None:
            parts.append(f"{60 * rate:.1f} cells/min")
        if self.replayed:
            parts.append(f"{self.replayed} replayed")
        parts.append(f"retries {self.retries}")
        parts.append(f"failures {self.failures}")
        return " | ".join(parts)

    def workers_line(self) -> str:
        if not self.worker_activity:
            return ""
        newest = sorted(self.worker_activity.items())
        return "workers: " + "  ".join(
            f"{host}:{pid}:{desc}" if host else f"{pid}:{desc}"
            for (host, pid), desc in newest
        )

    def _render(self, unit: "WorkUnit", outcome: "CellOutcome") -> None:
        if self._isatty:
            line = self.status_line()
            workers = self.workers_line()
            if workers:
                line = f"{line} | {workers}"
            self.stream.write("\r\x1b[2K" + line[:200])
            self.stream.flush()
            return
        verdict = "replayed" if outcome.from_checkpoint else ("ok" if outcome.ok else "FAILED")
        self.stream.write(
            f"[{self.done}/{self.total}] {unit.describe()} {verdict}"
            f" | eta {format_eta(self.eta_s())}"
            f" | retries {self.retries} failures {self.failures}\n"
        )
        self.stream.flush()

    def finish(self) -> None:
        """Print the closing summary (and drop the TTY status line)."""
        if self._isatty:
            self.stream.write("\r\x1b[2K")
        self.stream.write(self.status_line() + "\n")
        self.stream.flush()
