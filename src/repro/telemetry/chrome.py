"""Chrome trace-event-format export — open any study trace in Perfetto.

Converts the JSONL span stream (:mod:`repro.telemetry.events`) into the
Chrome trace event format (the ``{"traceEvents": [...]}`` JSON consumed by
``chrome://tracing`` and https://ui.perfetto.dev): ``B``/``E`` duration
events for spans, ``C`` counter tracks for counters and gauges, ``i``
instants for point events, and ``M`` metadata naming each process track.

Clock handling: within one process, ``t`` (``time.perf_counter``) gives
exact relative timing but has an arbitrary epoch per process.  Each
process's timeline is therefore anchored on its first ``span_start``'s
``wall − t`` offset, aligning workers on a common wall-clock base; the
earliest event across processes becomes ``ts = 0``.  Funneled worker
batches land in the merged trace at *write* order, so events from
concurrent threads can interleave slightly out of clock order — timestamps
are clamped monotonically non-decreasing per thread track, which Perfetto
requires for correct nesting.  Each pid renders as one process with one
thread track (the funnel serializes per-process events).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
]


def _pid_offsets(events: list[dict]) -> dict:
    """Per-pid ``wall − t`` anchor from each pid's first wall-bearing event."""
    offsets: dict = {}
    for event in events:
        pid = event.get("pid")
        if pid not in offsets and "wall" in event and "t" in event:
            offsets[pid] = float(event["wall"]) - float(event["t"])
    return offsets


def chrome_trace_events(events: list[dict]) -> list[dict]:
    """Convert telemetry events into Chrome trace-event dicts.

    Event ``args`` carry the telemetry attributes verbatim (minus the
    envelope fields), so span attrs are inspectable in the Perfetto UI.
    """
    offsets = _pid_offsets(events)
    default_offset = min(offsets.values(), default=0.0)
    absolute = []
    for event in events:
        pid = event.get("pid")
        t = float(event.get("t", 0.0))
        absolute.append(t + offsets.get(pid, default_offset))
    base = min(absolute, default=0.0)

    envelope = {"ev", "name", "span", "parent", "t", "wall", "pid", "dur_s", "value"}
    out: list[dict] = []
    seen_pids: list = []
    counters: dict = {}
    last_ts: dict = {}
    for event, abs_t in zip(events, absolute):
        kind = event.get("ev")
        pid = event.get("pid")
        if pid not in last_ts:
            seen_pids.append(pid)
        ts = (abs_t - base) * 1e6
        ts = max(ts, last_ts.get(pid, 0.0))
        last_ts[pid] = ts
        name = event.get("name", "")
        args = {k: v for k, v in event.items() if k not in envelope}
        common = {"pid": pid, "tid": pid, "ts": round(ts, 3)}
        if kind == "span_start":
            out.append({"name": name, "ph": "B", **common, "args": args})
        elif kind == "span_end":
            out.append({"name": name, "ph": "E", **common, "args": args})
        elif kind == "counter":
            key = (pid, name)
            counters[key] = counters.get(key, 0) + event.get("value", 1)
            out.append({"name": name, "ph": "C", **common,
                        "args": {name: counters[key]}})
        elif kind == "gauge":
            out.append({"name": name, "ph": "C", **common,
                        "args": {name: event.get("value", 0.0)}})
        elif kind == "event":
            out.append({"name": name, "ph": "i", "s": "t", **common, "args": args})
    for pid in seen_pids:
        out.append({"name": "process_name", "ph": "M", "pid": pid, "tid": pid,
                    "args": {"name": f"repro pid {pid}"}})
    return out


def export_chrome_trace(events: list[dict], path: str | os.PathLike) -> dict:
    """Write a Chrome trace JSON file; returns :func:`validate_chrome_trace` stats."""
    trace = {"traceEvents": chrome_trace_events(events), "displayTimeUnit": "ms"}
    stats = validate_chrome_trace(trace)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace) + "\n")
    return stats


def validate_chrome_trace(trace: dict) -> dict:
    """Structural validation of an exported Chrome trace.

    Checks, per thread track: ``B``/``E`` events balance with matching
    names (properly nested), and timestamps are monotonically
    non-decreasing.  Raises :class:`ValueError` on violation; returns
    ``{"events": n, "spans": n, "tids": n}``.
    """
    trace_events = trace.get("traceEvents")
    if not isinstance(trace_events, list):
        raise ValueError("chrome trace missing 'traceEvents' list")
    stacks: dict = {}
    last_ts: dict = {}
    spans = 0
    for index, event in enumerate(trace_events):
        ph = event.get("ph")
        if ph == "M":
            continue
        if "pid" not in event or "tid" not in event or "ts" not in event:
            raise ValueError(f"event {index}: missing pid/tid/ts: {event}")
        tid = (event["pid"], event["tid"])
        ts = float(event["ts"])
        if ts < 0 or not math.isfinite(ts):
            raise ValueError(f"event {index}: bad timestamp {ts}")
        if ts < last_ts.get(tid, 0.0):
            raise ValueError(
                f"event {index}: ts {ts} decreases on tid {tid} "
                f"(previous {last_ts[tid]})"
            )
        last_ts[tid] = ts
        if ph == "B":
            stacks.setdefault(tid, []).append(event.get("name", ""))
        elif ph == "E":
            stack = stacks.get(tid)
            if not stack:
                raise ValueError(f"event {index}: E without open B on tid {tid}")
            open_name = stack.pop()
            if event.get("name", "") != open_name:
                raise ValueError(
                    f"event {index}: E for {event.get('name')!r} but innermost "
                    f"open B on tid {tid} is {open_name!r}"
                )
            spans += 1
        elif ph not in ("C", "i"):
            raise ValueError(f"event {index}: unknown phase {ph!r}")
    open_tids = {tid: stack for tid, stack in stacks.items() if stack}
    if open_tids:
        raise ValueError(f"unbalanced chrome trace: open B events: {open_tids}")
    return {"events": len(trace_events), "spans": spans, "tids": len(last_ts)}
