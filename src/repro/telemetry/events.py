"""Structured trace events — the core of the study telemetry layer.

A :class:`Telemetry` handle emits structured events as plain dicts to a sink:

- ``span_start`` / ``span_end`` pairs — monotonic-clocked, nested via a
  per-handle span stack, covering the study hierarchy
  study → unit → attempt → repetition → epoch (plus the runner phases
  ``golden_fit`` / ``fault_injection`` / ``faulty_fit`` / ``inference``);
- ``counter`` events — monotonically accumulated tallies
  (``retry``, ``cache_hit``, ``checkpoint_skip``, …);
- ``gauge`` events — instantaneous measurements (``examples_per_s``);
- ``event`` events — point-in-time markers (``divergence``).

Two concrete sinks: :class:`FileTelemetry` appends JSONL to a trace file
(one event per line, flushed per event so a killed sweep leaves a readable
prefix), and :class:`RecordingTelemetry` buffers events in memory — the
funnel that carries a worker process's events back to the parent collector
inside a :class:`~repro.experiments.resilience.CellOutcome`.

The process-global handle defaults to :data:`NULL` (a no-op
:class:`NullTelemetry`), so instrumented code costs almost nothing when
telemetry is disabled: ``get_telemetry()`` returns the singleton and every
emit call is an empty method.  Instrumentation must always go through
:func:`get_telemetry` — never cache the handle across calls — so scoped
swaps (:func:`telemetry_scope`) and fork safety work.

Timestamps: ``t`` is ``time.perf_counter()`` — meaningful only *within* one
process, which is all durations need (``span_end`` carries ``dur_s`` computed
locally).  ``wall`` on ``span_start`` is ``time.time()`` for human-readable
cross-process context.  Merged traces are ordered by write order (the
collector is a single writer), not by clock.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = [
    "Telemetry",
    "FileTelemetry",
    "RecordingTelemetry",
    "NullTelemetry",
    "NULL",
    "get_telemetry",
    "set_telemetry",
    "telemetry_scope",
]

#: Process-wide span-id counter: unique across every Telemetry instance in
#: this process (successive per-unit recorders must not reuse ids).  Combined
#: with the pid, ids are unique across a whole parallel sweep.
_SPAN_IDS = itertools.count()


def _next_span_id() -> str:
    return f"{os.getpid():x}.{next(_SPAN_IDS)}"


class _Span:
    """Context manager for one ``span_start``/``span_end`` pair.

    Always emits a balanced pair (the end event is written from ``__exit__``
    even when the body raises, tagged ``outcome: "error"``).  :meth:`set`
    attaches attributes to the *end* event — for measurements only known
    once the span body ran (losses, throughput).
    """

    __slots__ = ("_telemetry", "name", "attrs", "id", "_t0", "_end_attrs")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.id = ""
        self._t0 = 0.0
        self._end_attrs: dict = {}

    def set(self, **attrs: object) -> "_Span":
        """Attach attributes to this span's ``span_end`` event."""
        self._end_attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tel = self._telemetry
        self.id = _next_span_id()
        parent = tel._stack[-1] if tel._stack else None
        self._t0 = time.perf_counter()
        tel._emit({
            "ev": "span_start",
            "name": self.name,
            "span": self.id,
            "parent": parent,
            "t": self._t0,
            "wall": time.time(),
            **self.attrs,
        })
        tel._stack.append(self.id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        tel = self._telemetry
        if tel._stack and tel._stack[-1] == self.id:
            tel._stack.pop()
        end = {
            "ev": "span_end",
            "name": self.name,
            "span": self.id,
            "t": t1,
            "dur_s": t1 - self._t0,
            **self._end_attrs,
        }
        if exc_type is not None:
            end.setdefault("outcome", "error")
            end.setdefault("error", exc_type.__name__)
        tel._emit(end)
        return False


class _NullSpan:
    """The reusable do-nothing span returned by :class:`NullTelemetry`."""

    __slots__ = ()
    id = ""
    name = ""

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Base emitter: spans, counters, gauges, and point events over ``_emit``.

    Subclasses supply the sink by overriding :meth:`_write`.  Every event is
    stamped with the emitting process id, so merged traces stay attributable
    per worker.
    """

    enabled = True

    def __init__(self) -> None:
        self._stack: list[str] = []
        self._pid = os.getpid()

    # -- sink ----------------------------------------------------------
    def _write(self, event: dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _emit(self, event: dict) -> None:
        event.setdefault("pid", self._pid)
        self._write(event)

    # -- emitters ------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _Span:
        """A ``span_start``/``span_end`` context manager named ``name``."""
        return _Span(self, name, attrs)

    def counter(self, name: str, value: int = 1, **attrs: object) -> None:
        """Emit an accumulating tally increment (``retry``, ``cache_hit``…)."""
        self._emit({"ev": "counter", "name": name, "value": value,
                    "t": time.perf_counter(), **attrs})

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        """Emit an instantaneous measurement (``examples_per_s``…)."""
        self._emit({"ev": "gauge", "name": name, "value": value,
                    "t": time.perf_counter(), **attrs})

    def event(self, name: str, **attrs: object) -> None:
        """Emit a point-in-time marker (``divergence``…)."""
        self._emit({"ev": "event", "name": name, "t": time.perf_counter(), **attrs})

    def write_batch(self, events: list[dict], parent: str | None = None) -> None:
        """Append pre-stamped events verbatim (a funneled worker batch).

        Root spans of the batch (``parent: None``) are re-parented onto
        ``parent`` — the collector's study span — so merged traces carry the
        full study → unit hierarchy even when units ran in worker processes.
        """
        for event in events:
            if parent is not None and event.get("ev") == "span_start" \
                    and event.get("parent") is None:
                event = {**event, "parent": parent}
            self._write(event)

    def close(self) -> None:
        """Release the sink (no-op by default)."""

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FileTelemetry(Telemetry):
    """Telemetry appending JSONL to a trace file, one event per line.

    Each line is flushed as written, so an interrupted sweep leaves a valid
    JSONL prefix (at worst one torn final line, which readers skip).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = open(self.path, "a")

    def _write(self, event: dict) -> None:
        if self._fh is None:
            raise ValueError(f"telemetry trace {self.path} is closed")
        self._fh.write(json.dumps(event, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class RecordingTelemetry(Telemetry):
    """Telemetry buffering events in memory — the worker-side funnel.

    Events are plain dicts (picklable), so a worker's batch travels back to
    the parent collector on its ``CellOutcome`` and is merged into the trace
    file by the single writer there.
    """

    def __init__(self) -> None:
        super().__init__()
        self.events: list[dict] = []

    def _write(self, event: dict) -> None:
        self.events.append(event)

    def drain(self) -> list[dict]:
        """Return the buffered events and reset the buffer."""
        events, self.events = self.events, []
        return events


class NullTelemetry:
    """The disabled handle: every emitter is a no-op, spans are a singleton.

    This is the process default — instrumented code pays one attribute access
    and an empty call per emit point, keeping telemetry zero-cost when off.
    """

    enabled = False
    _pid = None

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: int = 1, **attrs: object) -> None:
        pass

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass

    def write_batch(self, events: list[dict], parent: str | None = None) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: The shared disabled handle (safe to compare with ``is``).
NULL = NullTelemetry()

_ACTIVE: Telemetry | NullTelemetry = NULL


def get_telemetry() -> Telemetry | NullTelemetry:
    """The active telemetry handle for *this* process.

    Returns :data:`NULL` when none is installed — and also after a fork, if
    the installed handle belongs to the parent process (a forked worker must
    never write to the parent's trace file; it gets its own recorder from the
    executor instead).
    """
    active = _ACTIVE
    if active is NULL or active._pid == os.getpid():
        return active
    return NULL


def set_telemetry(telemetry: Telemetry | NullTelemetry | None) -> None:
    """Install (or with ``None``, clear) the process-global handle."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else NULL


@contextmanager
def telemetry_scope(telemetry: Telemetry | NullTelemetry) -> Iterator[Telemetry | NullTelemetry]:
    """Temporarily install ``telemetry`` as the process-global handle.

    The executors use this to route all instrumentation emitted while one
    unit executes into that unit's recorder, restoring the previous handle
    afterwards.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
