"""``repro.telemetry`` — structured study observability.

A cross-cutting layer over the whole pipeline: :mod:`repro.nn` training
loops, the :mod:`repro.experiments` runner/resilience/executor stack, and the
CLI all emit structured JSONL trace events through a process-global
:class:`Telemetry` handle (span timers, counters, gauges), disabled by
default at zero cost.  Consumers: :func:`summarize_trace` /
``repro-study trace`` for post-hoc analysis and :class:`ProgressReporter`
for live sweep status.
"""

from .events import (
    NULL,
    FileTelemetry,
    NullTelemetry,
    RecordingTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_scope,
)
from .progress import ProgressReporter, format_eta
from .summary import TraceSummary, render_trace_summary, summarize_trace
from .trace import (
    SpanNode,
    TraceError,
    hierarchy_signature,
    read_trace,
    span_tree,
    validate_trace,
)

__all__ = [
    "Telemetry",
    "FileTelemetry",
    "RecordingTelemetry",
    "NullTelemetry",
    "NULL",
    "get_telemetry",
    "set_telemetry",
    "telemetry_scope",
    "TraceError",
    "SpanNode",
    "read_trace",
    "validate_trace",
    "span_tree",
    "hierarchy_signature",
    "TraceSummary",
    "summarize_trace",
    "render_trace_summary",
    "ProgressReporter",
    "format_eta",
]
