"""``repro.telemetry`` — structured study observability.

A cross-cutting layer over the whole pipeline: :mod:`repro.nn` training
loops, the :mod:`repro.experiments` runner/resilience/executor stack, the
serving engine, and the CLI all emit structured JSONL trace events through
a process-global :class:`Telemetry` handle (span timers, counters, gauges)
and live metrics through a process-global :class:`MetricsRegistry`
(counters, gauges, bucketed histograms) — both disabled by default at zero
cost.  Consumers: :func:`summarize_trace` / ``repro-study trace`` for
post-hoc analysis, :func:`export_chrome_trace` for Perfetto, the serving
``/metrics`` endpoint for live dashboards, and :class:`ProgressReporter`
for live sweep status.
"""

from .chrome import chrome_trace_events, export_chrome_trace, validate_chrome_trace
from .events import (
    NULL,
    FileTelemetry,
    NullTelemetry,
    RecordingTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_scope,
)
from .metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    NULL_METRICS,
    QUEUE_DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    histogram_quantile,
    latency_summary_ms,
    log_buckets,
    metrics_scope,
    parse_prometheus_text,
    render_prometheus,
    set_metrics,
)
from .progress import ProgressReporter, format_eta
from .summary import TraceSummary, render_trace_summary, summarize_trace
from .trace import (
    SpanNode,
    TraceError,
    hierarchy_signature,
    read_trace,
    repair_trace,
    span_tree,
    validate_trace,
)

__all__ = [
    "Telemetry",
    "FileTelemetry",
    "RecordingTelemetry",
    "NullTelemetry",
    "NULL",
    "get_telemetry",
    "set_telemetry",
    "telemetry_scope",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "metrics_scope",
    "log_buckets",
    "LATENCY_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "histogram_quantile",
    "latency_summary_ms",
    "render_prometheus",
    "parse_prometheus_text",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "TraceError",
    "SpanNode",
    "read_trace",
    "repair_trace",
    "validate_trace",
    "span_tree",
    "hierarchy_signature",
    "TraceSummary",
    "summarize_trace",
    "render_trace_summary",
    "ProgressReporter",
    "format_eta",
]
