"""repro — reproduction of "The Fault in Our Data Stars" (DSN 2022).

A study of training-data fault mitigation (TDFM) techniques: label smoothing,
label correction, robust loss, knowledge distillation, and ensembles, compared
under mislabelling / repetition / removal faults across three datasets and
seven neural-network architectures.

Public surface:

- :mod:`repro.nn` -- NumPy deep-learning framework (the substrate)
- :mod:`repro.data` -- datasets (synthetic stand-ins for CIFAR-10/GTSRB/Pneumonia)
- :mod:`repro.faults` -- training-data fault injection
- :mod:`repro.models` -- the seven architectures of paper Table III
- :mod:`repro.mitigation` -- the five TDFM techniques (the paper's subject)
- :mod:`repro.metrics` -- accuracy delta (AD), confidence intervals, overheads
- :mod:`repro.experiments` -- the study harness and per-table/figure drivers
- :mod:`repro.survey` -- the Table I technique catalog and selection
- :mod:`repro.analysis` -- mechanism analyses (memorization, diversity, per-class AD)
- :mod:`repro.telemetry` -- structured trace events, span timers, live sweep progress
- :mod:`repro.serve` -- model registry, micro-batched inference engine, HTTP endpoint
"""

from . import (
    analysis,
    data,
    experiments,
    faults,
    metrics,
    mitigation,
    models,
    nn,
    serve,
    survey,
    telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "nn",
    "data",
    "faults",
    "models",
    "mitigation",
    "metrics",
    "experiments",
    "survey",
    "telemetry",
    "serve",
    "__version__",
]
