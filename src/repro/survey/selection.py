"""The representative-technique selection procedure of paper §III-A.

A technique represents its TDFM approach when it satisfies all five criteria.
For approaches with no all-criteria candidate (Knowledge Distillation and
Ensemble in Table I), the paper re-implements a representative from the top
three articles' descriptions; this module reproduces both the selection and
that fallback, and can render Table I as text.
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import APPROACHES, TABLE1_CANDIDATES, CandidateTechnique

__all__ = ["SelectionResult", "select_representatives", "render_table1"]

#: The paper's re-implementation choices for approaches with no all-✓ row.
_REIMPLEMENTATION_CHOICE = {
    "Knowledge Distillation": "Self Distillation",
    "Ensemble": "LTEC",  # ensemble-consensus ideas; the study votes 5 diverse models
}


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of selection for one approach."""

    approach: str
    representative: CandidateTechnique
    reimplemented: bool  # True when no candidate met all criteria

    def __str__(self) -> str:
        marker = " (re-implemented)" if self.reimplemented else ""
        return f"{self.approach}: {self.representative.technique}{marker}"


def candidates_for(approach: str) -> list[CandidateTechnique]:
    """Table I rows of one approach, in printed order."""
    rows = [c for c in TABLE1_CANDIDATES if c.approach == approach]
    if not rows:
        raise KeyError(f"unknown approach {approach!r}; choices: {APPROACHES}")
    return rows


def select_representatives() -> dict[str, SelectionResult]:
    """Apply the §III-A selection to every approach.

    Returns one :class:`SelectionResult` per approach.  Approaches with an
    all-criteria candidate select it directly; the rest fall back to the
    paper's re-implemented representative.
    """
    results: dict[str, SelectionResult] = {}
    for approach in APPROACHES:
        rows = candidates_for(approach)
        qualifying = [c for c in rows if c.criteria.all_met()]
        if len(qualifying) > 1:
            raise RuntimeError(
                f"{approach}: multiple candidates meet all criteria; Table I expects at most one"
            )
        if qualifying:
            results[approach] = SelectionResult(approach, qualifying[0], reimplemented=False)
            continue
        fallback_name = _REIMPLEMENTATION_CHOICE[approach]
        fallback = next(c for c in rows if c.technique == fallback_name)
        results[approach] = SelectionResult(approach, fallback, reimplemented=True)
    return results


def render_table1() -> str:
    """Render Table I as aligned text, marking representatives with ``*``."""
    representatives = {
        r.representative.technique for r in select_representatives().values() if not r.reimplemented
    }
    header = (
        f"{'Approach':<24}{'Technique':<28}{'Code?':<7}{'Arch?':<7}"
        f"{'Noise?':<8}{'NoPre?':<8}{'Alone?':<7}"
    )
    lines = [header, "-" * len(header)]
    for candidate in TABLE1_CANDIDATES:
        flags = ["Y" if f else "x" for f in candidate.criteria.as_tuple()]
        name = candidate.technique + ("*" if candidate.technique in representatives else "")
        lines.append(
            f"{candidate.approach:<24}{name:<28}"
            f"{flags[0]:<7}{flags[1]:<7}{flags[2]:<8}{flags[3]:<8}{flags[4]:<7}"
        )
    return "\n".join(lines)
