"""The technique catalog of paper Table I.

The paper surveys ~200 articles, shortlists 50, groups them into five TDFM
approaches, and scores the top three candidates per approach against five
selection criteria.  This module encodes those 15 candidates and their
criterion flags exactly as printed in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Criteria", "CandidateTechnique", "TABLE1_CANDIDATES", "APPROACHES"]

#: The five TDFM approaches, in Table I order.
APPROACHES = (
    "Label Smoothing",
    "Label Correction",
    "Robust Loss",
    "Knowledge Distillation",
    "Ensemble",
)


@dataclass(frozen=True)
class Criteria:
    """The five selection criteria of paper §III-A."""

    code_available: bool  # (1) code available & easily modifiable
    architecture_agnostic: bool  # (2) evaluated on >1 architecture type & dataset
    artificial_noise: bool  # (3) capable of tolerating artificial noise
    not_pretrained: bool  # (4) does not rely on pre-trained weights
    standalone: bool  # (5) not a combination of other techniques

    def all_met(self) -> bool:
        """True when every criterion holds — the representative condition."""
        return all(
            (
                self.code_available,
                self.architecture_agnostic,
                self.artificial_noise,
                self.not_pretrained,
                self.standalone,
            )
        )

    def as_tuple(self) -> tuple[bool, bool, bool, bool, bool]:
        return (
            self.code_available,
            self.architecture_agnostic,
            self.artificial_noise,
            self.not_pretrained,
            self.standalone,
        )


@dataclass(frozen=True)
class CandidateTechnique:
    """One row of Table I."""

    approach: str
    technique: str
    reference: str
    criteria: Criteria


def _row(
    approach: str,
    technique: str,
    reference: str,
    code: bool,
    arch: bool,
    noise: bool,
    no_pretrain: bool,
    standalone: bool,
) -> CandidateTechnique:
    return CandidateTechnique(
        approach, technique, reference, Criteria(code, arch, noise, no_pretrain, standalone)
    )


#: Table I rows, verbatim from the paper.
TABLE1_CANDIDATES: tuple[CandidateTechnique, ...] = (
    # Label Smoothing
    _row("Label Smoothing", "Label Relaxation", "[16]", True, True, True, True, True),
    _row("Label Smoothing", "Lukasik et al.", "[27]", False, False, True, True, False),
    _row("Label Smoothing", "OLS", "[28]", False, True, True, True, True),
    # Label Correction
    _row("Label Correction", "Meta Label Correction", "[17]", True, True, True, True, True),
    _row("Label Correction", "ProSelfLC", "[29]", False, False, True, True, True),
    _row("Label Correction", "SMP", "[30]", True, False, False, False, True),
    # Robust Loss
    _row("Robust Loss", "Active-Passive Losses", "[18]", True, True, True, True, True),
    _row("Robust Loss", "Charoenphakdee et al.", "[31]", True, False, True, True, True),
    _row("Robust Loss", "Zhang et al.", "[32]", True, False, True, True, True),
    # Knowledge Distillation
    _row("Knowledge Distillation", "CMD-P", "[33]", False, True, True, False, True),
    _row("Knowledge Distillation", "KD-Lib", "[34]", True, True, False, True, False),
    _row("Knowledge Distillation", "Self Distillation", "[19]", True, True, False, True, True),
    # Ensemble
    _row("Ensemble", "LTEC", "[35]", True, False, True, True, True),
    _row("Ensemble", "SELF", "[36]", False, False, True, True, False),
    _row("Ensemble", "Super-Learner", "[20]", False, True, False, True, True),
)
