"""``repro.survey`` — the Table I technique catalog and selection procedure."""

from .catalog import APPROACHES, TABLE1_CANDIDATES, CandidateTechnique, Criteria
from .selection import SelectionResult, candidates_for, render_table1, select_representatives

__all__ = [
    "APPROACHES",
    "TABLE1_CANDIDATES",
    "CandidateTechnique",
    "Criteria",
    "SelectionResult",
    "candidates_for",
    "select_representatives",
    "render_table1",
]
