"""Admission control and dispatch for the serving fleet.

The :class:`Router` is the fleet's traffic brain, deliberately decoupled from
any replica transport so its dispatch logic is testable without processes,
threads, or clocks:

- **Admission** — every submitted request first passes per-client fairness
  (a :class:`TokenBucket` keyed by client id), then a bounded per-model
  admission queue.  A request that fails either check is *shed*: its caller
  gets a :class:`ShedError` immediately (the HTTP layer maps it to ``429``
  with a ``Retry-After`` estimate) — shed requests never hang.
- **Dispatch** — accepted requests wait in per-model priority queues
  (higher ``priority`` first, FIFO within a priority) and are handed to the
  healthy replica with the fewest outstanding requests, in chunks that an
  IPC-backed replica can ship as one frame.
- **Failure** — when a replica dies (:meth:`Router.replica_failed`), every
  request it held is requeued at its original position and re-dispatched to
  a surviving replica.  A late result from an evicted replica is dropped
  (counted, never double-delivered), so every accepted request is answered
  *exactly once* — the permutation invariant the property suite pins down.

Replicas appear to the router as ``send(chunk)`` callables registered under
a ``(slot, generation)`` identity; completions flow back through
:meth:`on_result` / :meth:`on_error` / :meth:`replica_failed` carrying that
identity, so a respawned replica reusing a slot can never be confused with
its dead predecessor.  The router runs its own dispatcher thread in
production (``auto_dispatch=True``) but is fully drivable by hand —
``pump()`` — for deterministic tests, with an injectable clock.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..telemetry import QUEUE_DEPTH_BUCKETS, MetricsRegistry, get_metrics
from .registry import ModelKey

__all__ = [
    "ShedError",
    "ReplicaGone",
    "TokenBucket",
    "Chunk",
    "Router",
    "SHED_POLICIES",
]

#: Admission policies for a full queue: ``reject`` sheds the arrival;
#: ``evict-lowest`` sheds the lowest-priority queued request instead when
#: the arrival outranks it (both answer the shed caller immediately).
SHED_POLICIES = ("reject", "evict-lowest")

#: Outstanding-request histogram bound (per replica, observed at dispatch).
_OUTSTANDING_BUCKETS = QUEUE_DEPTH_BUCKETS


class ShedError(RuntimeError):
    """The request was refused (or evicted) by admission control.

    ``retry_after_s`` is the router's drain-time estimate — the HTTP layer
    rounds it up into a ``Retry-After`` header; ``reason`` says which gate
    shed the request (``queue-full``, ``client-rate``, ``evicted``,
    ``shutdown``).
    """

    def __init__(self, reason: str, retry_after_s: float = 1.0) -> None:
        super().__init__(f"request shed ({reason}); retry after {retry_after_s:.2f}s")
        self.reason = reason
        self.retry_after_s = retry_after_s


class ReplicaGone(RuntimeError):
    """Raised by a replica's ``send`` when the replica can no longer accept."""


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capped at ``burst``.

    Not thread-safe on its own — the router calls it under its lock.  The
    clock is injectable so fairness tests are deterministic.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp", "clock")

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"token rate must be positive; got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1; got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.stamp = clock()

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; refill lazily from the clock."""
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    @property
    def deficit_s(self) -> float:
        """Seconds until one token is available (0 when acquirable now)."""
        return max(0.0, (1.0 - self.tokens) / self.rate)


class _Request:
    """One accepted sample: identity, payload, and its caller-facing future."""

    __slots__ = (
        "seq", "key", "sample", "client", "priority", "enqueued",
        "future", "done", "dispatched_at",
    )

    def __init__(self, seq: int, key: ModelKey, sample: np.ndarray,
                 client: str, priority: int, enqueued: float) -> None:
        self.seq = seq
        self.key = key
        self.sample = sample
        self.client = client
        self.priority = priority
        self.enqueued = enqueued
        self.future: Future = Future()
        self.done = False  # guarded by the router lock; first completion wins
        self.dispatched_at = 0.0


@dataclass
class Chunk:
    """A same-model batch of requests handed to one replica in one send."""

    key: ModelKey
    seqs: list = field(default_factory=list)
    samples: list = field(default_factory=list)

    def stacked(self) -> np.ndarray:
        """The samples as one ``(k, ...)`` array (the IPC wire format)."""
        return np.stack(self.samples)

    def __len__(self) -> int:
        return len(self.seqs)


class _ReplicaLink:
    """Router-side record of one registered replica."""

    __slots__ = ("slot", "generation", "send", "outstanding")

    def __init__(self, slot: int, generation: int, send) -> None:
        self.slot = slot
        self.generation = generation
        self.send = send
        self.outstanding: "OrderedDict[int, _Request]" = OrderedDict()


class Router:
    """Least-outstanding-requests dispatch behind bounded admission queues.

    Parameters:

    - ``max_queue`` — per-model admission bound (queued, not yet dispatched).
    - ``shed_policy`` — see :data:`SHED_POLICIES`.
    - ``client_rate`` / ``client_burst`` — per-client token bucket; ``None``
      rate disables fairness limiting.
    - ``chunk`` — most requests one dispatch hands a replica (one IPC frame).
    - ``replica_cap`` — most outstanding requests one replica may hold; the
      dispatcher stalls (rather than piling onto a struggling replica) when
      every replica is at its cap, bounding requeue loss on a crash.
    - ``auto_dispatch`` — run the dispatcher thread (production).  Tests use
      ``False`` and call :meth:`pump` by hand.
    - ``clock`` — injectable monotonic clock for deterministic tests.
    - ``registry`` — metrics registry (defaults to the process-global one
      when live metrics are enabled, else a private registry).
    """

    def __init__(
        self,
        max_queue: int = 256,
        shed_policy: str = "reject",
        client_rate: "float | None" = None,
        client_burst: "float | None" = None,
        chunk: int = 8,
        replica_cap: int = 32,
        auto_dispatch: bool = True,
        clock=time.monotonic,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1; got {max_queue}")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {shed_policy!r}; choose from {SHED_POLICIES}"
            )
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1; got {chunk}")
        if replica_cap < 1:
            raise ValueError(f"replica_cap must be >= 1; got {replica_cap}")
        self.max_queue = max_queue
        self.shed_policy = shed_policy
        self.client_rate = client_rate
        self.client_burst = client_burst if client_burst is not None else (
            max(1.0, client_rate) if client_rate else 1.0
        )
        self.chunk = chunk
        self.replica_cap = replica_cap
        self.clock = clock
        if registry is None:
            active = get_metrics()
            registry = active if active.enabled else MetricsRegistry()
        self.registry = registry
        self._requests_total = registry.counter(
            "fleet_requests_total", help="Requests submitted to the router")
        self._accepted_total = registry.counter(
            "fleet_accepted_total", help="Requests admitted past fairness + queue bounds")
        self._shed_total = registry.counter(
            "fleet_shed_total", help="Requests shed by admission control (429s)")
        self._redispatch_total = registry.counter(
            "fleet_redispatch_total", help="Requests requeued after a replica failure")
        self._late_results_total = registry.counter(
            "fleet_late_results_total", help="Results from evicted replicas, dropped")
        self._errors_total = registry.counter(
            "fleet_errors_total", help="Requests failed by replica inference errors")
        self._queue_depth = registry.histogram(
            "fleet_queue_depth", QUEUE_DEPTH_BUCKETS,
            help="Per-model admission-queue depth observed at submit")
        self._cond = threading.Condition()
        self._seq = 0
        self._queues: "dict[ModelKey, list[tuple[int, int]]]" = {}
        self._queued: "dict[int, _Request]" = {}
        self._links: "dict[int, _ReplicaLink]" = {}
        self._buckets: "dict[str, TokenBucket]" = {}
        self._ewma_interval_s = 0.0  # smoothed seconds per completion
        self._last_completion = 0.0
        self._closed = False
        self._auto = auto_dispatch
        self._thread: "threading.Thread | None" = None
        self._slot_latency: "dict[int, object]" = {}
        self._slot_outstanding: "dict[int, object]" = {}
        if auto_dispatch:
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="fleet-router", daemon=True
            )
            self._thread.start()

    # -- replica management --------------------------------------------
    def add_replica(self, slot: int, send, generation: int = 0) -> None:
        """Register (or replace, at a higher generation) a replica's sender."""
        with self._cond:
            link = self._links.get(slot)
            if link is not None and link.generation >= generation:
                raise ValueError(
                    f"slot {slot} already registered at generation "
                    f"{link.generation} (>= {generation})"
                )
            if link is not None:
                self._requeue_locked(link)
            self._links[slot] = _ReplicaLink(slot, generation, send)
            self._slot_latency.setdefault(slot, self.registry.histogram(
                f"fleet_replica{slot}_latency_seconds",
                help=f"Dispatch-to-result latency on replica slot {slot}"))
            self._slot_outstanding.setdefault(slot, self.registry.histogram(
                f"fleet_replica{slot}_outstanding", _OUTSTANDING_BUCKETS,
                help=f"Outstanding requests on replica slot {slot} at dispatch"))
            self._cond.notify_all()

    def remove_replica(self, slot: int, generation: "int | None" = None) -> None:
        """Gracefully drop a replica, requeueing anything it still holds."""
        self.replica_failed(slot, generation, redispatch_counts=False)

    def replica_failed(
        self, slot: int, generation: "int | None" = None,
        redispatch_counts: bool = True,
    ) -> None:
        """A replica crashed or was evicted: requeue its in-flight requests.

        ``generation`` (when given) must match the registered link — a stale
        callback from an already-replaced replica is ignored, so respawns
        reusing a slot are never torn down by their predecessor's death.
        """
        with self._cond:
            link = self._links.get(slot)
            if link is None or (generation is not None and link.generation != generation):
                return
            del self._links[slot]
            requeued = self._requeue_locked(link)
            if redispatch_counts and requeued:
                self._redispatch_total.inc(requeued)
            self._cond.notify_all()

    def _requeue_locked(self, link: _ReplicaLink) -> int:
        requeued = 0
        for seq, request in link.outstanding.items():
            if request.done:
                continue
            self._push_locked(request)
            requeued += 1
        link.outstanding.clear()
        return requeued

    def _push_locked(self, request: _Request) -> None:
        """(Re)queue a request; its original seq keeps its FIFO position."""
        self._queued[request.seq] = request
        heapq.heappush(
            self._queues.setdefault(request.key, []),
            (-request.priority, request.seq),
        )

    def replicas(self) -> "dict[int, int]":
        """``{slot: outstanding}`` for every registered replica."""
        with self._cond:
            return {slot: len(link.outstanding) for slot, link in self._links.items()}

    # -- admission ------------------------------------------------------
    def submit(
        self,
        key: "ModelKey | str",
        sample: np.ndarray,
        client: "str | None" = None,
        priority: int = 0,
    ) -> Future:
        """Admit one sample; returns a future of its logits row.

        Raises :class:`ShedError` immediately when admission control refuses
        the request — a shed caller never waits.
        """
        if isinstance(key, str):
            key = ModelKey.parse(key)
        sample = np.asarray(sample)
        with self._cond:
            if self._closed:
                raise ShedError("shutdown", 1.0)
            self._requests_total.inc()
            if self.client_rate is not None:
                bucket = self._buckets.get(client or "")
                if bucket is None:
                    bucket = TokenBucket(
                        self.client_rate, self.client_burst, clock=self.clock
                    )
                    self._buckets[client or ""] = bucket
                if not bucket.try_acquire():
                    self._shed_total.inc()
                    raise ShedError("client-rate", max(bucket.deficit_s, 0.05))
            queue = self._queues.setdefault(key, [])
            if self._model_depth_locked(key) >= self.max_queue:
                victim = self._admit_over_full_locked(key, priority)
                if victim is None:
                    self._shed_total.inc()
                    raise ShedError("queue-full", self._drain_estimate_locked())
                # evict-lowest: the displaced request is answered 429 now.
                self._shed_total.inc()
                victim.done = True
                victim.future.set_exception(
                    ShedError("evicted", self._drain_estimate_locked())
                )
            request = _Request(
                self._seq, key, sample, client or "", priority, self.clock()
            )
            self._seq += 1
            self._push_locked(request)
            self._accepted_total.inc()
            self._queue_depth.observe(self._model_depth_locked(key))
            self._cond.notify_all()
            return request.future

    def _model_depth_locked(self, key: ModelKey) -> int:
        return len(self._queues.get(key, ()))

    def _admit_over_full_locked(self, key: ModelKey, priority: int) -> "_Request | None":
        """Full queue: pick a lower-priority victim to evict, or ``None``."""
        if self.shed_policy != "evict-lowest":
            return None
        queue = self._queues[key]
        worst_index = max(range(len(queue)), key=lambda i: (queue[i][0], queue[i][1]))
        neg_priority, seq = queue[worst_index]
        if -neg_priority >= priority:
            return None  # arrival does not outrank anything queued
        queue[worst_index] = queue[-1]
        queue.pop()
        heapq.heapify(queue)
        return self._queued.pop(seq)

    def _drain_estimate_locked(self) -> float:
        """Retry-After estimate: backlog x smoothed seconds-per-completion."""
        backlog = len(self._queued) + sum(
            len(link.outstanding) for link in self._links.values()
        )
        per = self._ewma_interval_s if self._ewma_interval_s > 0 else 0.01
        return min(30.0, max(0.05, backlog * per))

    # -- dispatch -------------------------------------------------------
    def _pick_locked(self) -> "tuple[ModelKey, _ReplicaLink] | None":
        """The highest-priority oldest model queue + least-loaded replica."""
        best_key = None
        best_rank = None
        for key, queue in self._queues.items():
            while queue and queue[0][1] not in self._queued:
                heapq.heappop(queue)  # lazily drop evicted entries
            if not queue:
                continue
            if best_rank is None or queue[0] < best_rank:
                best_key, best_rank = key, queue[0]
        if best_key is None:
            return None
        link = None
        for candidate in self._links.values():
            if len(candidate.outstanding) >= self.replica_cap:
                continue
            if link is None or len(candidate.outstanding) < len(link.outstanding):
                link = candidate
        if link is None:
            return None
        return best_key, link

    def step(self) -> bool:
        """Dispatch one chunk if possible; returns whether anything moved."""
        with self._cond:
            picked = self._pick_locked()
            if picked is None:
                return False
            key, link = picked
            queue = self._queues[key]
            room = min(self.chunk, self.replica_cap - len(link.outstanding))
            chunk = Chunk(key)
            now = self.clock()
            while queue and len(chunk) < room:
                _, seq = heapq.heappop(queue)
                request = self._queued.pop(seq, None)
                if request is None:
                    continue
                request.dispatched_at = now
                link.outstanding[seq] = request
                chunk.seqs.append(seq)
                chunk.samples.append(request.sample)
            if not chunk:
                return False
            self._slot_outstanding[link.slot].observe(len(link.outstanding))
            send, slot, generation = link.send, link.slot, link.generation
        try:
            send(chunk)
        except ReplicaGone:
            self.replica_failed(slot, generation)
        except Exception:  # a broken sender is a dead replica, not a crash
            self.replica_failed(slot, generation)
        return True

    def pump(self) -> int:
        """Dispatch until quiescent (manual mode); returns chunks moved."""
        moved = 0
        while self.step():
            moved += 1
        return moved

    def _dispatch_loop(self) -> None:
        while True:
            if not self.step():
                with self._cond:
                    if self._closed:
                        return
                    # Re-check under the lock: submit/notify may have raced.
                    if self._pick_locked() is None:
                        self._cond.wait(timeout=0.5)

    # -- completion callbacks (called by replica transports) -----------
    def on_result(self, slot: int, generation: int, seq: int, row: np.ndarray) -> None:
        """A replica answered ``seq``; deliver unless it was already failed over."""
        with self._cond:
            request = self._pop_outstanding_locked(slot, generation, seq)
            if request is None:
                return
            request.done = True
            now = self.clock()
            self._observe_completion_locked(slot, request, now)
            self._cond.notify_all()
        request.future.set_result(row)

    def on_error(self, slot: int, generation: int, seq: int, exc: BaseException) -> None:
        """A replica's inference failed for ``seq``: propagate to the caller."""
        with self._cond:
            request = self._pop_outstanding_locked(slot, generation, seq)
            if request is None:
                return
            request.done = True
            self._errors_total.inc()
            self._cond.notify_all()
        request.future.set_exception(exc)

    def _pop_outstanding_locked(self, slot, generation, seq) -> "_Request | None":
        link = self._links.get(slot)
        if link is None or link.generation != generation:
            self._late_results_total.inc()
            return None
        request = link.outstanding.pop(seq, None)
        if request is None or request.done:
            self._late_results_total.inc()
            return None
        return request

    def _observe_completion_locked(self, slot: int, request: _Request, now: float) -> None:
        hist = self._slot_latency.get(slot)
        if hist is not None:
            hist.observe(max(0.0, now - request.dispatched_at))
        if self._last_completion:
            interval = max(1e-6, now - self._last_completion)
            alpha = 0.05
            self._ewma_interval_s = (
                interval if self._ewma_interval_s == 0.0
                else (1 - alpha) * self._ewma_interval_s + alpha * interval
            )
        self._last_completion = now

    # -- introspection / lifecycle --------------------------------------
    def oldest_dispatch_age(self, slot: int) -> float:
        """Seconds the replica's oldest in-flight request has been out (0 = idle)."""
        with self._cond:
            link = self._links.get(slot)
            if link is None or not link.outstanding:
                return 0.0
            seq = next(iter(link.outstanding))
            return max(0.0, self.clock() - link.outstanding[seq].dispatched_at)

    def queued(self) -> int:
        with self._cond:
            return len(self._queued)

    def snapshot(self) -> dict:
        """JSON-shaped router state (part of the ``/fleet`` payload)."""
        with self._cond:
            return {
                "queued": len(self._queued),
                "queues": {key.id: self._model_depth_locked(key)
                           for key in self._queues if self._queues[key]},
                "replicas": {str(slot): len(link.outstanding)
                             for slot, link in self._links.items()},
                "requests": self._requests_total.value,
                "accepted": self._accepted_total.value,
                "shed": self._shed_total.value,
                "redispatched": self._redispatch_total.value,
                "late_results": self._late_results_total.value,
                "errors": self._errors_total.value,
                "retry_after_s": round(self._drain_estimate_locked(), 3),
                "shed_policy": self.shed_policy,
                "max_queue": self.max_queue,
            }

    def close(self) -> None:
        """Stop dispatching; shed everything queued or in flight (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            leftovers = list(self._queued.values())
            self._queued.clear()
            self._queues.clear()
            for link in self._links.values():
                for request in link.outstanding.values():
                    if not request.done:
                        leftovers.append(request)
                link.outstanding.clear()
            self._links.clear()
            for request in leftovers:
                request.done = True
            self._cond.notify_all()
        for request in leftovers:
            request.future.set_exception(ShedError("shutdown", 1.0))
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
