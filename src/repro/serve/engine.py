"""Dynamic micro-batching inference engine.

Individual predict requests land in a thread-safe queue; worker threads
coalesce them into batches bounded by ``max_batch_size`` and
``max_latency_ms`` — the classic serving trade-off: a request waits at most
the latency bound for company, and a full batch dispatches immediately.  The
coalesced batch runs one forward pass per batch (im2col and the conv gemms
genuinely vectorise across the coalesced samples), and the per-sample rows
are handed back to each caller's future.

**Equivalence discipline.**  Responses are bitwise-independent of how
requests were coalesced: inference runs under
:class:`~repro.nn.functional.row_stable_inference`, so a sample served in a
batch of 8 gets exactly the bits a one-at-a-time
:func:`repro.nn.trainer.predict_logits` call would return.  The batched
equivalence suite (``tests/serve/test_engine.py``) enforces this the same way
``results_equivalent`` locks down serial↔parallel study runs.

**Telemetry.**  Each dispatched batch emits a ``serve_batch`` span (with
``serve_infer`` nested inside) into a per-batch
:class:`~repro.telemetry.RecordingTelemetry`, funneled under the engine's
root ``serve`` span through the single-writer ``write_batch`` path — so a
trace of a serving session validates with the existing
:func:`repro.telemetry.validate_trace` tooling even with concurrent workers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..telemetry import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    NULL,
    QUEUE_DEPTH_BUCKETS,
    MetricsRegistry,
    RecordingTelemetry,
    get_metrics,
    latency_summary_ms,
)
from .registry import ModelKey, ModelRegistry

__all__ = ["BatchSettings", "ServingStats", "ServingEngine", "EngineClosedError"]


class EngineClosedError(RuntimeError):
    """The engine has been closed; it will never serve another request.

    Raised by :meth:`ServingEngine.submit` (and :meth:`ServingEngine.start`)
    after :meth:`ServingEngine.close`, and set on any future that was still
    pending at close time.  A distinct type matters to the fleet layer
    (:mod:`repro.serve.fleet`): a replica seeing this knows its engine died
    and re-routes the request instead of failing the caller.
    """


@dataclass(frozen=True)
class BatchSettings:
    """Micro-batching knobs.

    ``max_batch_size`` caps how many queued samples one dispatch coalesces;
    ``max_latency_ms`` bounds how long the oldest queued request may wait for
    the batch to fill; ``workers`` is the number of inference threads (each
    thread has its own kernel workspace arena, so workers never contend on
    scratch buffers).
    """

    max_batch_size: int = 8
    max_latency_ms: float = 2.0
    workers: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class ServingStats:
    """Histogram-backed aggregates for one engine (snapshot via :meth:`snapshot`).

    All counts live in a :class:`~repro.telemetry.MetricsRegistry` — the
    process-global one when live metrics are enabled (so the ``/metrics``
    endpoint sees serving traffic alongside everything else), otherwise a
    private registry owned by this engine.  The legacy integer fields
    (``requests``, ``batches``, ``errors``) remain as read-only properties
    over the counters, and ``/stats`` percentiles come from
    :func:`~repro.telemetry.latency_summary_ms` — the same implementation
    ``benchmarks/bench_serving.py`` uses, so live and benched percentiles
    agree by construction.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        if registry is None:
            active = get_metrics()
            registry = active if active.enabled else MetricsRegistry()
        self.registry = registry
        self._requests = registry.counter(
            "serve_requests_total", help="Samples served (one per submitted request)")
        self._batches = registry.counter(
            "serve_batches_total", help="Micro-batches dispatched")
        self._errors = registry.counter(
            "serve_errors_total", help="Batches that failed their callers")
        self.request_latency = registry.histogram(
            "serve_request_latency_seconds", LATENCY_BUCKETS_S,
            help="Per-request enqueue-to-result latency")
        self.batch_size = registry.histogram(
            "serve_batch_size", BATCH_SIZE_BUCKETS,
            help="Coalesced samples per dispatched batch")
        self.queue_depth = registry.histogram(
            "serve_queue_depth", QUEUE_DEPTH_BUCKETS,
            help="Model-queue depth observed at submit time")
        self.max_batch = 0
        self.queue_wait_s = 0.0
        self.infer_s = 0.0

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def errors(self) -> int:
        return self._errors.value

    def snapshot(self) -> dict:
        """JSON-shaped snapshot (the ``/stats`` endpoint payload)."""
        sizes = self.batch_size
        return {
            "requests": self.requests,
            "batches": self.batches,
            "errors": self.errors,
            "max_batch": self.max_batch,
            "mean_batch": round(sizes.mean, 3) if sizes.count else 0.0,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "infer_s": round(self.infer_s, 6),
            "latency_ms": latency_summary_ms(self.request_latency),
            "batch_size": {
                "p50": round(sizes.quantile(0.50), 3),
                "p95": round(sizes.quantile(0.95), 3),
                "p99": round(sizes.quantile(0.99), 3),
                "counts": list(sizes.counts),
                "buckets": list(sizes.bounds),
            },
        }


class _Item:
    """One queued sample: its input array, arrival time, and result future."""

    __slots__ = ("sample", "enqueued", "future")

    def __init__(self, sample: np.ndarray) -> None:
        self.sample = sample
        self.enqueued = time.perf_counter()
        self.future: Future = Future()


class ServingEngine:
    """Micro-batched prediction over a :class:`~repro.serve.registry.ModelRegistry`.

    Use as a context manager, or pair :meth:`start` with :meth:`close`::

        with ServingEngine(registry, BatchSettings(max_batch_size=8)) as engine:
            logits = engine.predict("gtsrb/convnet/baseline/none", images)

    ``telemetry`` (optional) receives a root ``serve`` span for the engine's
    lifetime and one funneled ``serve_batch`` span per dispatched batch.  It
    must be a handle owned by the thread that calls ``start``/``close`` (the
    engine serialises its own writes with an internal lock).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        settings: BatchSettings | None = None,
        telemetry=None,
    ) -> None:
        self.registry = registry
        self.settings = settings or BatchSettings()
        self.stats = ServingStats()
        self._telemetry = telemetry if telemetry is not None else NULL
        self._tel_lock = threading.Lock()
        self._root_span = None
        self._cond = threading.Condition()
        self._queues: "dict[ModelKey, deque[_Item]]" = {}
        self._threads: list[threading.Thread] = []
        self._running = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServingEngine":
        """Spawn the worker threads (idempotent; engines are single-use).

        Worker threads are spawned *under the engine lock* so a racing
        :meth:`close` can never observe a half-populated thread list — it
        either sees no workers (start hasn't happened) or all of them.
        """
        if self._telemetry is not NULL:
            root = self._telemetry.span(
                "serve",
                max_batch_size=self.settings.max_batch_size,
                max_latency_ms=self.settings.max_latency_ms,
                workers=self.settings.workers,
            )
        with self._cond:
            if self._closed:
                raise EngineClosedError(
                    "serving engine closed; engines are single-use — build a new one"
                )
            if self._running:
                return self
            self._running = True
            if self._telemetry is not NULL:
                self._root_span = root
                self._root_span.__enter__()
            for index in range(self.settings.workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)
        return self

    def close(self) -> None:
        """Stop the workers, failing any still-queued requests.

        Closing is terminal: the ``_closed`` flag flips under the same lock
        that :meth:`submit` takes, so a submit racing close either lands in
        ``pending`` (and is failed here) or raises
        :class:`EngineClosedError` — a request can never be enqueued after
        the drain and silently starve.
        """
        with self._cond:
            self._closed = True
            if not self._running:
                return
            self._running = False
            pending = [item for queue in self._queues.values() for item in queue]
            self._queues.clear()
            self._cond.notify_all()
        for item in pending:
            item.future.set_exception(EngineClosedError("serving engine closed"))
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        if self._root_span is not None:
            with self._tel_lock:
                self._telemetry.event(
                    "metrics_snapshot", metrics=self.stats.registry.snapshot()
                )
            snapshot = self.stats.snapshot()
            self._root_span.set(**{
                k: v for k, v in snapshot.items() if not isinstance(v, dict)
            })
            self._root_span.__exit__(None, None, None)
            self._root_span = None

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request path --------------------------------------------------
    def submit(self, key: "ModelKey | str", sample: np.ndarray) -> Future:
        """Queue one sample for prediction; returns a future of its logits row.

        ``sample`` is a single input (no batch axis).  The model key is
        resolved eagerly so an unknown model fails the caller immediately
        rather than poisoning a coalesced batch.
        """
        if isinstance(key, str):
            key = ModelKey.parse(key)
        self.registry.get(key)  # raise KeyError now, not inside a batch
        item = _Item(np.asarray(sample))
        with self._cond:
            if self._closed:
                raise EngineClosedError(
                    "serving engine closed — submit() raced or followed close()"
                )
            if not self._running:
                raise RuntimeError("serving engine is not running (call start())")
            queue = self._queues.setdefault(key, deque())
            queue.append(item)
            depth = len(queue)
            self._cond.notify()
        self.stats.queue_depth.observe(depth)
        return item.future

    def predict(
        self, key: "ModelKey | str", inputs: np.ndarray, timeout: float | None = 30.0
    ) -> np.ndarray:
        """Predict logits for ``inputs`` (one sample or a stack of samples).

        Each sample is submitted as its own request — the equivalence unit —
        so the result is identical whether this call's samples coalesce with
        each other, with other clients' requests, or run alone.
        """
        inputs = np.asarray(inputs)
        servable = self.registry.get(key)
        sample_ndim = 1 if servable.key.model == "mlp" else 3
        batch = inputs if inputs.ndim > sample_ndim else inputs[None]
        futures = [self.submit(key, sample) for sample in batch]
        rows = [future.result(timeout=timeout) for future in futures]
        out = np.stack(rows)
        return out if inputs.ndim > sample_ndim else out[0]

    # -- worker side ---------------------------------------------------
    def _collect_batch(self) -> "tuple[ModelKey, list[_Item]] | None":
        """Block until a batch is ready (or the engine stops); pop and return it.

        Dispatch policy: serve the model whose head-of-line request is oldest;
        dispatch when its queue reaches ``max_batch_size`` or its oldest
        request has waited ``max_latency_ms``.
        """
        max_size = self.settings.max_batch_size
        max_wait = self.settings.max_latency_ms / 1000.0
        with self._cond:
            while True:
                if not self._running:
                    return None
                oldest_key = None
                oldest_t = None
                for key, queue in self._queues.items():
                    if queue and (oldest_t is None or queue[0].enqueued < oldest_t):
                        oldest_key, oldest_t = key, queue[0].enqueued
                if oldest_key is None:
                    self._cond.wait()
                    continue
                queue = self._queues[oldest_key]
                deadline = oldest_t + max_wait
                remaining = deadline - time.perf_counter()
                if len(queue) >= max_size or remaining <= 0:
                    items = [queue.popleft() for _ in range(min(len(queue), max_size))]
                    return oldest_key, items
                # Wait for the batch to fill, but never past the deadline.
                self._cond.wait(timeout=remaining)

    def _worker_loop(self) -> None:
        while True:
            collected = self._collect_batch()
            if collected is None:
                return
            key, items = collected
            self._run_batch(key, items)

    def _run_batch(self, key: ModelKey, items: "list[_Item]") -> None:
        recorder = RecordingTelemetry() if self._telemetry is not NULL else None
        started = time.perf_counter()
        queue_wait = started - min(item.enqueued for item in items)
        servable = self.registry.get(key)
        span = recorder.span(
            "serve_batch", model=key.id, batch=len(items)
        ) if recorder else None
        try:
            if span:
                span.__enter__()
            batch = np.stack([item.sample for item in items])
            if recorder:
                with recorder.span("serve_infer", batch=len(items)):
                    logits = servable.predict_logits(batch)
            else:
                logits = servable.predict_logits(batch)
            infer_s = time.perf_counter() - started
            if span:
                span.set(queue_wait_s=queue_wait, infer_s=infer_s)
        except BaseException as exc:  # fail every caller in the batch
            if span:
                span.set(outcome="error", error=type(exc).__name__)
                span.__exit__(None, None, None)
            self._record(key, items, queue_wait, 0.0, error=True, recorder=recorder)
            for item in items:
                item.future.set_exception(exc)
            return
        span and span.__exit__(None, None, None)
        servable.predictions += len(items)
        self._record(key, items, queue_wait, infer_s, error=False, recorder=recorder)
        done = time.perf_counter()
        latency = self.stats.request_latency
        for row, item in zip(logits, items):
            item.future.set_result(row)
            latency.observe(done - item.enqueued)

    def _record(
        self,
        key: ModelKey,
        items: "list[_Item]",
        queue_wait: float,
        infer_s: float,
        error: bool,
        recorder: "RecordingTelemetry | None",
    ) -> None:
        """Update stats and funnel the batch's events under the root span."""
        stats = self.stats
        with self._cond:
            stats.max_batch = max(stats.max_batch, len(items))
            stats.queue_wait_s += queue_wait
            stats.infer_s += infer_s
        stats._requests.inc(len(items))
        stats._batches.inc()
        stats.batch_size.observe(len(items))
        if error:
            stats._errors.inc()
        if recorder is not None:
            parent = self._root_span.id if self._root_span is not None else None
            with self._tel_lock:
                self._telemetry.write_batch(recorder.drain(), parent=parent)
