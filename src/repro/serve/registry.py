"""Model registry — the serving layer's catalog of trained models.

A :class:`ModelRegistry` maps :class:`ModelKey`\\ s — ``(network, dataset,
technique, fault label)``, the identity of one study cell's trained model —
to :class:`ServableModel`\\ s ready for inference.  Models enter the registry
three ways:

- :meth:`ModelRegistry.register` — an already-constructed module;
- :meth:`ModelRegistry.load_state_file` — a ``.npz`` archive written by
  :func:`repro.nn.serialization.save_model`;
- :meth:`ModelRegistry.refit_cell` — deterministic re-training of an archived
  study cell: the same scale, derived seeds, fault injection, and technique
  fit as the original :class:`~repro.experiments.runner.ExperimentRunner`
  pass, so the served model is the one the study measured.

Inference goes through :meth:`ServableModel.predict_logits`, which runs in
eval mode under ``no_grad`` and :class:`~repro.nn.functional.row_stable_inference`
— the property that makes micro-batching (:mod:`repro.serve.engine`) safe:
coalesced batches are bitwise-identical to one-at-a-time
:func:`~repro.nn.trainer.predict_logits` calls.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

from ..data.registry import DATASETS, load_dataset
from ..experiments.config import ExperimentConfig, derive_repetition_seed, resolve_scale
from ..experiments.runner import prepare_faulty_train
from ..faults.spec import spec_from_label
from ..mitigation.base import FittedModel, SingleModelFitted
from ..mitigation.registry import build_technique
from ..models.registry import build_model
from ..nn import Module, Tensor, load_into, no_grad
from ..nn.functional import row_stable_inference, softmax_np
from ..nn.serialization import StateFileError

__all__ = ["ModelKey", "ServableModel", "ModelRegistry"]


@dataclass(frozen=True)
class ModelKey:
    """Identity of one servable model: which study cell trained it."""

    model: str
    dataset: str
    technique: str = "baseline"
    fault_label: str = "none"

    @property
    def id(self) -> str:
        """Canonical string form, e.g. ``gtsrb/convnet/baseline/none``."""
        return f"{self.dataset}/{self.model}/{self.technique}/{self.fault_label}"

    @classmethod
    def parse(cls, text: str) -> "ModelKey":
        """Parse the :attr:`id` form back into a key."""
        parts = text.strip().strip("/").split("/")
        if len(parts) != 4:
            raise ValueError(
                f"model key must be dataset/model/technique/fault_label; got {text!r}"
            )
        dataset, model, technique, fault_label = parts
        return cls(model=model, dataset=dataset, technique=technique, fault_label=fault_label)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.id


class ServableModel:
    """One registered model plus its inference entry points.

    ``predict_logits`` is the serving hot path: eval mode (set once at
    registration, so repeated predictions do not re-flush the kernel
    workspace), no gradient tape, row-stable kernels.  Access is not
    serialised here — forward passes only read weights, so any number of
    engine worker threads may infer concurrently.
    """

    def __init__(
        self,
        key: ModelKey,
        module: Module,
        source: str = "registered",
        metadata: dict | None = None,
    ) -> None:
        self.key = key
        self.module = module.eval()
        self.source = source
        self.metadata = dict(metadata or {})
        self.predictions = 0  # samples served (engine-maintained tally)

    def predict_logits(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for a ``(N, ...)`` input batch, bitwise batch-size-invariant.

        Row-stable inference guarantees that any coalescing of the same
        samples — one call of 8, two calls of 4, eight calls of 1 — produces
        bitwise-identical per-sample rows, equal to what a plain one-at-a-time
        :func:`repro.nn.trainer.predict_logits` call returns.
        """
        batch = np.ascontiguousarray(inputs, dtype=np.float32)
        with no_grad(), row_stable_inference():
            return self.module(Tensor(batch)).data

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Softmax probabilities (same softmax as the training stack)."""
        return softmax_np(self.predict_logits(inputs), axis=1)

    def predict_labels(self, inputs: np.ndarray) -> np.ndarray:
        """Hard label predictions."""
        return self.predict_logits(inputs).argmax(axis=1)

    def describe(self) -> dict:
        """JSON-shaped summary (the ``/models`` endpoint payload)."""
        return {
            "key": self.key.id,
            "model": self.key.model,
            "dataset": self.key.dataset,
            "technique": self.key.technique,
            "fault": self.key.fault_label,
            "source": self.source,
            "parameters": self.module.num_parameters(),
            "predictions": self.predictions,
            **self.metadata,
        }


class ModelRegistry:
    """Thread-safe catalog of servable models, keyed by :class:`ModelKey`."""

    def __init__(self) -> None:
        self._models: dict[ModelKey, ServableModel] = {}
        self._lock = threading.Lock()

    # -- catalog -------------------------------------------------------
    def register(self, servable: ServableModel) -> ServableModel:
        """Add (or replace) a servable model; returns it."""
        with self._lock:
            self._models[servable.key] = servable
        return servable

    def get(self, key: "ModelKey | str") -> ServableModel:
        """Look up a model by key or key-id string; raises ``KeyError``."""
        if isinstance(key, str):
            key = ModelKey.parse(key)
        with self._lock:
            try:
                return self._models[key]
            except KeyError:
                known = sorted(k.id for k in self._models)
                raise KeyError(
                    f"no model registered under {key.id!r}; registered: {known}"
                ) from None

    def keys(self) -> list[ModelKey]:
        with self._lock:
            return list(self._models)

    def describe(self) -> list[dict]:
        """Summaries of every registered model (the ``/models`` payload)."""
        with self._lock:
            servables = list(self._models.values())
        return [s.describe() for s in servables]

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, key: "ModelKey | str") -> bool:
        if isinstance(key, str):
            key = ModelKey.parse(key)
        with self._lock:
            return key in self._models

    # -- loading paths -------------------------------------------------
    def register_module(
        self,
        key: ModelKey,
        module: Module,
        source: str = "registered",
        metadata: dict | None = None,
    ) -> ServableModel:
        """Wrap a constructed module and register it."""
        return self.register(ServableModel(key, module, source=source, metadata=metadata))

    def load_state_file(
        self,
        path: str | os.PathLike,
        key: ModelKey,
        image_shape: "tuple[int, int, int] | None" = None,
        num_classes: "int | None" = None,
        width: "int | None" = None,
        scale: "str | None" = None,
    ) -> ServableModel:
        """Build ``key.model`` and load a ``save_model`` archive into it.

        ``image_shape``/``num_classes`` default to the registered dataset's
        geometry at ``scale`` (name or ``None`` for the ``REPRO_SCALE``
        default) — the shapes study-trained models were saved with.  Missing,
        truncated, or corrupt files raise
        :class:`~repro.nn.serialization.StateFileError`; an archive saved
        from a different architecture or width fails the state-dict shape
        check with ``ValueError``.
        """
        if image_shape is None or num_classes is None:
            settings = resolve_scale(scale)
            try:
                info = DATASETS[key.dataset]
            except KeyError:
                raise StateFileError(
                    f"cannot infer model geometry: unknown dataset {key.dataset!r} "
                    f"(pass image_shape and num_classes explicitly)"
                ) from None
            if num_classes is None:
                num_classes = info.num_classes
            if image_shape is None:
                image_shape = (info.channels, settings.image_size, settings.image_size)
        module = build_model(
            key.model, image_shape=image_shape, num_classes=num_classes, width=width, seed=0
        )
        load_into(module, path)
        return self.register_module(
            key, module, source=f"state-file:{os.fspath(path)}"
        )

    def refit_cell(
        self,
        config: "ExperimentConfig | dict",
        repetition: int = 0,
        clean_fraction: float = 0.1,
    ) -> ServableModel:
        """Re-train the model of one archived study cell, deterministically.

        ``config`` is an :class:`~repro.experiments.config.ExperimentConfig`
        (or its dict form from a results archive).  The re-fit replays the
        runner's Fig. 2 steps with the same derived seeds: load the dataset at
        the cell's scale, inject the cell's fault with the repetition's
        injection RNG, and fit the technique under the scale's budget — so the
        registered model is byte-for-byte the network whose predictions the
        archive records.  Only single-model techniques are servable; ensembles
        raise ``ValueError``.
        """
        if isinstance(config, dict):
            config = ExperimentConfig(**config)
        settings = resolve_scale(config.scale)
        train_size, test_size = settings.sizes_for(config.dataset)
        train, _ = load_dataset(
            config.dataset,
            train_size=train_size,
            test_size=test_size,
            image_size=settings.image_size,
            seed=settings.seed,
        )
        fault = spec_from_label(config.fault_label)
        seed = derive_repetition_seed(
            settings.seed, config.dataset, config.model, repetition
        )
        injection_rng = np.random.default_rng(seed + 0x5EED)
        faulty_train = prepare_faulty_train(
            train, fault, config.technique, clean_fraction, injection_rng
        )
        technique = build_technique(config.technique)
        fitted: FittedModel = technique.fit(
            faulty_train,
            config.model,
            settings.budget(config.dataset),
            np.random.default_rng(seed + 1),
        )
        if not isinstance(fitted, SingleModelFitted):
            raise ValueError(
                f"technique {config.technique!r} does not produce a single servable "
                f"network (got {type(fitted).__name__}); serve its members instead"
            )
        key = ModelKey(
            model=config.model,
            dataset=config.dataset,
            technique=config.technique,
            fault_label=config.fault_label,
        )
        return self.register_module(
            key,
            fitted.model,
            source=f"refit:{config.scale}/rep{repetition}",
            metadata={"training_s": round(fitted.cost.training_s, 3)},
        )
