"""Stdlib HTTP front-end for the serving engine or a replicated fleet.

A thin JSON endpoint over :class:`~repro.serve.engine.ServingEngine` or
:class:`~repro.serve.fleet.ServingFleet`, built on
``http.server.ThreadingHTTPServer`` only — no third-party web framework.  Each
HTTP request thread submits its samples to the shared micro-batching backend,
so concurrent clients' requests coalesce into batches exactly like in-process
callers.

Routes::

    GET  /healthz   liveness + model count (+ healthy replicas in fleet mode)
    GET  /models    registry catalog (one summary dict per model)
    GET  /stats     engine counters + latency/batch-size percentiles
                    (router/latency summary in fleet mode)
    GET  /fleet     fleet status: replicas, generations, evictions, router
                    queues (fleet mode only; 404 behind a single engine)
    GET  /metrics   live metrics registry — Prometheus text exposition
                    format by default, ``?format=json`` for the raw snapshot
    POST /predict   {"model": "<dataset/model/technique/fault>",
                     "inputs": [...], "return": "logits"|"proba"|"labels",
                     "client": "<id>", "priority": <int>}
    POST /shutdown  graceful stop (used by the CI smoke job)

``/predict`` accepts a single sample or a stack of samples as nested lists;
the response carries per-sample rows plus the argmax labels.  Logits are
bitwise-identical to one-at-a-time inference regardless of how the server
coalesced them — or, in fleet mode, which replica served them.  ``client``
(or an ``X-Client-Id`` header) and ``priority`` feed the fleet's fairness
and priority admission; a shed request is answered ``429`` with a
``Retry-After`` header, never left hanging.
"""

from __future__ import annotations

import concurrent.futures
import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..nn.functional import softmax_np
from ..telemetry import get_metrics, render_prometheus
from .engine import ServingEngine
from .router import ShedError

__all__ = ["ServingServer", "serve_forever"]

#: Request body size cap (a resnet50-scale image batch fits comfortably).
_MAX_BODY = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; the backend and registry hang off ``self.server``."""

    protocol_version = "HTTP/1.1"
    server: "ServingServer"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        if self.server.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send_json(
        self, payload: dict, status: int = 200,
        headers: "dict[str, str] | None" = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > _MAX_BODY:
            raise ValueError(f"request body must be 1..{_MAX_BODY} bytes")
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _send_metrics(self, query: str) -> None:
        """The ``/metrics`` scrape: the process-global registry when live
        metrics are enabled (training + serving together), else the
        backend-private one — either way the same data ``/stats`` digests.
        """
        active = get_metrics()
        registry = active if active.enabled else self.server.metrics_registry
        snapshot = registry.snapshot()
        if "format=json" in query.split("&"):
            self._send_json(snapshot)
            return
        body = render_prometheus(snapshot).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:
        server = self.server
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            payload = {"status": "ok", "models": len(server.registry)}
            if server.fleet is not None:
                payload["replicas"] = server.fleet.healthy_replicas()
            self._send_json(payload)
        elif path == "/models":
            self._send_json({"models": server.registry.describe()})
        elif path == "/stats":
            self._send_json(server.stats_snapshot())
        elif path == "/fleet":
            if server.fleet is None:
                self._send_json(
                    {"error": "fleet mode not enabled (serving a single engine)"},
                    status=404,
                )
            else:
                self._send_json(server.fleet.describe())
        elif path == "/metrics":
            self._send_metrics(query)
        else:
            self._send_json({"error": f"unknown path {self.path!r}"}, status=404)

    def do_POST(self) -> None:
        if self.path == "/shutdown":
            self._send_json({"status": "shutting down"})
            # Shut down from another thread: shutdown() blocks until
            # serve_forever returns, which waits on *this* handler otherwise.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        if self.path != "/predict":
            self._send_json({"error": f"unknown path {self.path!r}"}, status=404)
            return
        try:
            payload = self._read_json()
            response = self._predict(payload)
        except ShedError as exc:
            retry_after = max(1, math.ceil(exc.retry_after_s))
            self._send_json(
                {"error": str(exc), "reason": exc.reason,
                 "retry_after_s": round(exc.retry_after_s, 3)},
                status=429,
                headers={"Retry-After": str(retry_after)},
            )
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            self._send_json({"error": str(exc)}, status=400)
        # Python < 3.11 keeps futures.TimeoutError distinct from the builtin;
        # catch both so the 503 mapping is version-independent.
        except (concurrent.futures.TimeoutError, TimeoutError):
            self._send_json(
                {
                    "error": "prediction timed out after "
                    f"{self.server.request_timeout_s}s"
                },
                status=503,
            )
        except Exception as exc:  # engine/inference failure
            self._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )
        else:
            self._send_json(response)

    def _predict(self, payload: dict) -> dict:
        if "model" not in payload:
            raise ValueError("request must name a 'model' key")
        if "inputs" not in payload:
            raise ValueError("request must carry 'inputs'")
        kind = payload.get("return", "logits")
        if kind not in ("logits", "proba", "labels"):
            raise ValueError(f"unknown return kind {kind!r}")
        server = self.server
        servable = server.registry.get(payload["model"])  # KeyError → 400
        inputs = np.asarray(payload["inputs"], dtype=np.float32)
        sample_ndim = 1 if servable.key.model == "mlp" else 3
        if inputs.ndim not in (sample_ndim, sample_ndim + 1):
            raise ValueError(
                f"inputs for {servable.key.model!r} must have {sample_ndim} "
                f"(single sample) or {sample_ndim + 1} (stack) dims; "
                f"got shape {inputs.shape}"
            )
        if server.fleet is not None:
            client = payload.get("client") or self.headers.get("X-Client-Id")
            priority = int(payload.get("priority", 0))
            logits = server.fleet.predict(
                servable.key, inputs,
                timeout=server.request_timeout_s,
                client=client, priority=priority,
            )
        else:
            logits = server.engine.predict(
                servable.key, inputs, timeout=server.request_timeout_s
            )
        rows = logits if logits.ndim == 2 else logits[None]
        out: dict = {
            "model": servable.key.id,
            "count": int(rows.shape[0]),
            "labels": rows.argmax(axis=1).tolist(),
        }
        if kind == "logits":
            out["logits"] = rows.tolist()
        elif kind == "proba":
            out["proba"] = softmax_np(rows, axis=1).tolist()
        return out


class ServingServer(ThreadingHTTPServer):
    """HTTP server bound to one serving backend (engine or fleet).

    ``backend`` is a started :class:`~repro.serve.engine.ServingEngine` or
    :class:`~repro.serve.fleet.ServingFleet`; the server does not own its
    lifecycle (the CLI composes backend + server and closes both).

    ``request_timeout_s`` bounds how long one ``/predict`` exchange may wait
    on the backend before the handler answers 503 (service unavailable)
    instead of hanging its client; ``None`` disables the bound.  Shed
    requests (fleet admission control) are answered 429 immediately.
    """

    daemon_threads = True
    # socketserver's default listen backlog (5) resets connections under
    # fleet-scale concurrency; hundreds of clients connect at once in the
    # load/chaos harness and a refused TCP connect is a lost request.
    request_queue_size = 512

    def __init__(
        self, backend, host: str = "127.0.0.1", port: int = 8777,
        verbose: bool = False, request_timeout_s: "float | None" = 30.0,
    ) -> None:
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive or None; got {request_timeout_s}"
            )
        is_engine = isinstance(backend, ServingEngine)
        self.engine: "ServingEngine | None" = backend if is_engine else None
        self.fleet = None if is_engine else backend
        self.registry = backend.registry
        self.verbose = verbose
        self.request_timeout_s = request_timeout_s
        super().__init__((host, port), _Handler)

    @property
    def metrics_registry(self):
        """The backend's own metrics registry (the ``/metrics`` fallback)."""
        if self.fleet is not None:
            return self.fleet.metrics
        return self.engine.stats.registry

    def stats_snapshot(self) -> dict:
        if self.fleet is not None:
            return self.fleet.stats_snapshot()
        return self.engine.stats.snapshot()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_forever(
    backend, host: str = "127.0.0.1", port: int = 8777,
    verbose: bool = False, ready: "threading.Event | None" = None,
    request_timeout_s: "float | None" = 30.0,
) -> ServingServer:
    """Run the HTTP endpoint until ``/shutdown`` or interrupt.

    ``backend`` is a started engine or fleet.  ``ready`` (optional) is set
    once the socket is bound and the URL is known — tests and the smoke job
    use it to avoid polling for startup.  ``request_timeout_s`` is the
    per-request 503 bound (see :class:`ServingServer`).
    """
    server = ServingServer(
        backend, host=host, port=port, verbose=verbose,
        request_timeout_s=request_timeout_s,
    )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.server_close()
    return server
