"""Replicated serving fleet: shared-memory weights, health-checked replicas.

One :class:`ServingFleet` turns a template :class:`~repro.serve.registry.ModelRegistry`
into ``N`` replicas behind a :class:`~repro.serve.router.Router`:

- **Weights are stored once.**  Every registered model's parameters and
  buffers are packed into a single ``multiprocessing.shared_memory`` block
  (:class:`SharedWeights` — the same block machinery the PR 9 allreduce
  uses), and every replica's module attaches *read-only views* into that
  block.  N replicas of a 10M-parameter model cost one copy of the arrays,
  whether the replicas are threads in this process or forked children.
- **Replicas are disposable.**  Each replica runs its own micro-batching
  :class:`~repro.serve.engine.ServingEngine` — in-process
  (:class:`ThreadReplica`) or in a forked child that re-attaches the shared
  block by name (:class:`ProcessReplica`).  A health monitor evicts a
  replica whose process died, whose engine closed, or whose oldest
  dispatched request overran ``replica_deadline_s``, requeues everything it
  held (the router guarantees exactly-once answers), and respawns a fresh
  replica into the same slot at a bumped generation.
- **Responses are bitwise-stable.**  Replicas share the same weight bytes
  and inference runs under row-stable kernels, so a sample's logits are
  identical no matter which replica, batch, or respawn served it — the
  fleet equivalence tests pin fleet output against one-engine
  ``predict_logits``.

Chaos hooks (``kill_replica``, ``slow_replica``) exist for the test and CI
harnesses: killing is indistinguishable from a real crash (SIGKILL for
process replicas, abrupt engine close for thread replicas), and a slowed
replica overruns its deadline and gets evicted like a genuinely wedged one.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..telemetry import (
    LATENCY_BUCKETS_S,
    NULL,
    MetricsRegistry,
    get_metrics,
    latency_summary_ms,
)
from .engine import BatchSettings, EngineClosedError, ServingEngine
from .registry import ModelKey, ModelRegistry, ServableModel
from .router import Chunk, ReplicaGone, Router, ShedError

__all__ = [
    "SharedWeights",
    "FleetSettings",
    "ThreadReplica",
    "ProcessReplica",
    "ServingFleet",
]

#: Replica backends: ``process`` forks children re-attaching the shared
#: block; ``thread`` keeps replicas in-process; ``auto`` prefers ``process``
#: where ``fork`` exists.
REPLICA_BACKENDS = ("auto", "process", "thread")


# ----------------------------------------------------------------------
# Shared-memory weight blocks
# ----------------------------------------------------------------------

#: Handles of closed blocks, pinned so their mappings survive until process
#: exit (see :meth:`SharedWeights.close`).
_RETIRED_MAPPINGS: "list[shared_memory.SharedMemory]" = []


def _assign_buffer(root, dotted: str, view: np.ndarray) -> None:
    """Replace the buffer at ``dotted`` (e.g. ``features.3.running_mean``)."""
    obj = root
    parts = dotted.split(".")
    for part in parts[:-1]:
        obj = obj[int(part)] if isinstance(obj, (list, tuple)) else getattr(obj, part)
    setattr(obj, parts[-1], view)


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class SharedWeights:
    """One model's parameters + buffers, packed once into a shared block.

    The creating process copies every array of ``module`` into a fresh
    ``multiprocessing.shared_memory`` block and records a ``(name, kind,
    offset, shape, dtype)`` layout.  Any process — this one, or a forked
    replica re-opening the block by :attr:`name` — can then call
    :meth:`attach` on a *structurally identical* module to swap its arrays
    for read-only, zero-copy views into the block.  The block is the single
    source of weight bytes for the whole fleet.
    """

    def __init__(self, key: ModelKey, module) -> None:
        self.key = key
        entries = []
        offset = 0
        arrays = []
        for name, param in module.named_parameters():
            offset = _align(offset)
            entries.append((name, "param", offset, param.data.shape, param.data.dtype.str))
            arrays.append(np.ascontiguousarray(param.data))
            offset += arrays[-1].nbytes
        for name, buf in module.named_buffers():
            offset = _align(offset)
            entries.append((name, "buffer", offset, buf.shape, buf.dtype.str))
            arrays.append(np.ascontiguousarray(buf))
            offset += arrays[-1].nbytes
        self.layout = tuple(entries)
        self.nbytes = max(1, offset)
        self._shm = shared_memory.SharedMemory(create=True, size=self.nbytes)
        self.name = self._shm.name
        for (name, kind, off, shape, dtype), array in zip(entries, arrays):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=off)
            view[...] = array

    def attach(self, module, shm: "shared_memory.SharedMemory | None" = None) -> list:
        """Point ``module``'s parameters/buffers at the block; returns the views.

        ``shm`` is an already-opened handle (a forked replica's own); when
        ``None`` the creator's mapping is used.  Views are marked read-only:
        serving never writes weights, and an accidental write should fail
        loudly rather than corrupt every replica at once.
        """
        handle = shm if shm is not None else self._shm
        params = dict(module.named_parameters())
        buffer_names = {name for name, _ in module.named_buffers()}
        views = []
        for name, kind, off, shape, dtype in self.layout:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=handle.buf, offset=off)
            view.flags.writeable = False
            if kind == "param":
                params[name].data = view
            else:
                if name not in buffer_names:
                    raise ValueError(f"module has no buffer {name!r} to attach")
                _assign_buffer(module, name, view)
            views.append(view)
        return views

    def open(self) -> "shared_memory.SharedMemory":
        """A fresh handle on the block (used by forked replicas)."""
        return shared_memory.SharedMemory(name=self.name)

    def close(self, unlink: bool = True) -> None:
        """Retire the creator's handle (and by default unlink the block).

        The mapping itself is pinned for the life of the process rather
        than unmapped: numpy views built over ``shm.buf`` keep only an
        object reference, not a buffer export, so ``shm.close()`` would
        happily unmap pages a straggler thread is about to read — e.g. a
        wedged replica worker that outlived its join timeout — turning a
        chaos test into a segfault.  Unlinking frees the name immediately;
        the pages return at process exit.
        """
        if self._shm is None:
            return
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        _RETIRED_MAPPINGS.append(self._shm)
        self._shm = None


def _attached_clone(servable: ServableModel, weights: SharedWeights) -> "tuple":
    """A structural copy of ``servable``'s module wired to the shared block."""
    module = copy.deepcopy(servable.module)
    views = weights.attach(module)
    clone = ServableModel(
        servable.key, module, source=f"fleet:{servable.source}",
        metadata=dict(servable.metadata),
    )
    return clone, views


# ----------------------------------------------------------------------
# Replica backends
# ----------------------------------------------------------------------

class ThreadReplica:
    """An in-process replica: its own engine + registry over shared views."""

    backend = "thread"

    def __init__(
        self,
        slot: int,
        generation: int,
        template: ModelRegistry,
        blocks: "dict[ModelKey, SharedWeights]",
        settings: BatchSettings,
        router: Router,
    ) -> None:
        self.slot = slot
        self.generation = generation
        self.router = router
        self.pid = os.getpid()
        self._views = []
        self.registry = ModelRegistry()
        self._servables: "dict[ModelKey, ServableModel]" = {}
        for key in template.keys():
            clone, views = _attached_clone(template.get(key), blocks[key])
            self.registry.register(clone)
            self._servables[key] = clone
            self._views.extend(views)
        self.engine = ServingEngine(self.registry, settings).start()
        self._failed = False

    def send(self, chunk: Chunk) -> None:
        for seq, sample in zip(chunk.seqs, chunk.samples):
            try:
                future = self.engine.submit(chunk.key, sample)
            except EngineClosedError:
                raise ReplicaGone(f"thread replica {self.slot} engine closed")
            future.add_done_callback(self._completion(seq))

    def _completion(self, seq: int):
        def _done(future) -> None:
            exc = future.exception()
            if exc is None:
                self.router.on_result(self.slot, self.generation, seq, future.result())
            elif isinstance(exc, EngineClosedError):
                # The whole replica died; the router requeues everything it
                # held, so per-request errors would only race the failover.
                self.router.replica_failed(self.slot, self.generation)
            else:
                self.router.on_error(self.slot, self.generation, seq, exc)
        return _done

    def alive(self) -> bool:
        return self.engine._running and not self._failed

    def kill(self) -> None:
        """Chaos hook: die abruptly, stranding whatever was in flight."""
        self._failed = True
        self.engine.close()

    def set_slow(self, delay_s: float) -> None:
        """Chaos hook: every inference on this replica stalls ``delay_s``."""
        for servable in self._servables.values():
            inner = type(servable).predict_logits.__get__(servable)

            def slowed(batch, _inner=inner):
                time.sleep(delay_s)
                return _inner(batch)

            servable.predict_logits = slowed

    def close(self) -> None:
        self.engine.close()
        self._views = []

    def describe(self) -> dict:
        return {"backend": self.backend, "pid": self.pid}


def _replica_main(child_conn, template: ModelRegistry,
                  blocks: "dict[ModelKey, SharedWeights]",
                  settings: BatchSettings) -> None:
    """Forked replica body: attach the shared blocks, serve predict frames.

    The child inherited the template modules via fork (copy-on-write pages)
    and immediately re-points their arrays at a freshly opened handle on
    each shared block — so its weights are the same bytes every other
    replica reads, not a copy.  Frames::

        ("predict", model_id, [seq...], stacked_samples) -> ("ok", seqs, logits)
                                                          | ("err", seqs, message)
        ("slow", delay_s)   chaos hook: stall every subsequent inference
        ("stop",)           graceful shutdown
    """
    handles = []
    registry = ModelRegistry()
    servables: "dict[str, ServableModel]" = {}
    views = []
    for key in template.keys():
        shm = blocks[key].open()
        handles.append(shm)
        module = template.get(key).module  # inherited; ours to mutate now
        views.extend(blocks[key].attach(module, shm=shm))
        servable = ServableModel(key, module, source="fleet-fork")
        registry.register(servable)
        servables[key.id] = servable
    engine = ServingEngine(registry, settings).start()
    replies = []  # (seqs, futures) awaiting completion, in dispatch order
    reply_ready = threading.Condition()
    stopping = False

    def replier() -> None:
        while True:
            with reply_ready:
                while not replies:
                    if stopping:
                        return
                    reply_ready.wait()
                seqs, futures = replies.pop(0)
            rows, error = [], None
            for future in futures:
                try:
                    rows.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - shipped to parent
                    error = f"{type(exc).__name__}: {exc}"
                    break
            try:
                if error is None:
                    child_conn.send(("ok", seqs, np.stack(rows)))
                else:
                    child_conn.send(("err", seqs, error))
            except (BrokenPipeError, OSError):  # parent went away
                return

    reply_thread = threading.Thread(target=replier, daemon=True)
    reply_thread.start()
    delay_s = 0.0
    try:
        while True:
            try:
                frame = child_conn.recv()
            except (EOFError, OSError):
                break
            if frame[0] == "stop":
                break
            if frame[0] == "slow":
                delay_s = float(frame[1])
                for servable in servables.values():
                    inner = type(servable).predict_logits.__get__(servable)

                    def slowed(batch, _inner=inner):
                        time.sleep(delay_s)
                        return _inner(batch)

                    servable.predict_logits = slowed
                continue
            _, model_id, seqs, samples = frame
            futures = [engine.submit(model_id, sample) for sample in samples]
            with reply_ready:
                replies.append((seqs, futures))
                reply_ready.notify()
    finally:
        with reply_ready:
            stopping = True
            reply_ready.notify_all()
        engine.close()
        reply_thread.join(timeout=5)
        # Deliberately leave the shm handles mapped: a wedged worker that
        # survived the join timeout may still be mid-inference, and process
        # exit reclaims the mappings anyway.
        child_conn.close()


class ProcessReplica:
    """A forked replica: engine + shared-block views in a child process."""

    backend = "process"

    def __init__(
        self,
        slot: int,
        generation: int,
        template: ModelRegistry,
        blocks: "dict[ModelKey, SharedWeights]",
        settings: BatchSettings,
        router: Router,
    ) -> None:
        self.slot = slot
        self.generation = generation
        self.router = router
        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_replica_main,
            args=(child_conn, template, blocks, settings),
            daemon=True,
            name=f"fleet-replica-{slot}",
        )
        self._proc.start()
        child_conn.close()
        self.pid = self._proc.pid
        self._send_lock = threading.Lock()
        self._closing = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"fleet-reader-{slot}", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        while True:
            try:
                frame = self._conn.recv()
            except (EOFError, OSError):
                break
            if frame[0] == "ok":
                _, seqs, rows = frame
                for seq, row in zip(seqs, rows):
                    self.router.on_result(self.slot, self.generation, seq, row)
            elif frame[0] == "err":
                _, seqs, message = frame
                for seq in seqs:
                    self.router.on_error(
                        self.slot, self.generation, seq, RuntimeError(message)
                    )
        if not self._closing:
            self.router.replica_failed(self.slot, self.generation)

    def send(self, chunk: Chunk) -> None:
        try:
            with self._send_lock:
                self._conn.send(("predict", chunk.key.id, chunk.seqs, chunk.stacked()))
        except (BrokenPipeError, OSError):
            raise ReplicaGone(f"process replica {self.slot} pipe broken")

    def alive(self) -> bool:
        return self._proc.is_alive()

    def kill(self) -> None:
        """Chaos hook: SIGKILL — indistinguishable from a real crash."""
        try:
            os.kill(self._proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover - already gone
            pass

    def set_slow(self, delay_s: float) -> None:
        try:
            with self._send_lock:
                self._conn.send(("slow", float(delay_s)))
        except (BrokenPipeError, OSError):  # pragma: no cover - dying replica
            pass

    def close(self) -> None:
        self._closing = True
        try:
            with self._send_lock:
                self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - stuck child safety net
            self._proc.terminate()
            self._proc.join(timeout=5)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self._reader.join(timeout=5)

    def describe(self) -> dict:
        return {"backend": self.backend, "pid": self.pid}


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FleetSettings:
    """Fleet-level knobs (replica count, admission, health policy)."""

    replicas: int = 2
    backend: str = "auto"
    max_queue: int = 256
    shed_policy: str = "reject"
    client_rate: "float | None" = None
    client_burst: "float | None" = None
    chunk: int = 8
    replica_cap: int = 32
    replica_deadline_s: float = 30.0
    health_interval_s: float = 0.25
    max_respawns: int = 16
    batch: BatchSettings = field(default_factory=BatchSettings)

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.backend not in REPLICA_BACKENDS:
            raise ValueError(
                f"unknown replica backend {self.backend!r}; choose from {REPLICA_BACKENDS}"
            )
        if self.replica_deadline_s <= 0:
            raise ValueError("replica_deadline_s must be positive")
        if self.health_interval_s <= 0:
            raise ValueError("health_interval_s must be positive")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")

    def resolved_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        return (
            "process"
            if "fork" in multiprocessing.get_all_start_methods()
            else "thread"
        )


class _Slot:
    """Fleet-side record of one replica position across respawns."""

    __slots__ = ("position", "generation", "handle", "evictions", "spawned_at")

    def __init__(self, position: int, generation: int, handle, now: float) -> None:
        self.position = position
        self.generation = generation
        self.handle = handle
        self.evictions = 0
        self.spawned_at = now


class ServingFleet:
    """N health-checked replicas behind admission control and a router.

    Use as a context manager, or pair :meth:`start` with :meth:`close`::

        fleet = ServingFleet(registry, FleetSettings(replicas=4)).start()
        logits = fleet.predict("gtsrb/convnet/baseline/none", images)

    ``registry`` is the *template*: its modules' weights are packed into
    shared blocks at :meth:`start`, and the template itself is kept pristine
    as the source for respawned replicas.  ``telemetry`` (optional) gets a
    root ``fleet`` span plus ``replica_evicted`` / ``replica_respawned``
    events from the health monitor.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        settings: "FleetSettings | None" = None,
        telemetry=None,
    ) -> None:
        self.registry = registry
        self.settings = settings or FleetSettings()
        self._telemetry = telemetry if telemetry is not None else NULL
        self._tel_lock = threading.Lock()
        self._root_span = None
        active = get_metrics()
        self.metrics = active if active.enabled else MetricsRegistry()
        self._evictions = self.metrics.counter(
            "fleet_evictions_total", help="Replicas evicted (crash, close, deadline)")
        self._respawns = self.metrics.counter(
            "fleet_respawns_total", help="Replicas respawned into an evicted slot")
        self._request_latency = self.metrics.histogram(
            "fleet_request_latency_seconds", LATENCY_BUCKETS_S,
            help="Submit-to-result latency through the fleet")
        self.router: "Router | None" = None
        self._blocks: "dict[ModelKey, SharedWeights]" = {}
        self._slots: "dict[int, _Slot]" = {}
        self._lock = threading.Lock()
        self._health: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._running = False
        self._backend = self.settings.resolved_backend()
        self._respawns_left = self.settings.max_respawns

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServingFleet":
        if self._running:
            return self
        if self._root_span is None and self._telemetry is not NULL:
            self._root_span = self._telemetry.span(
                "fleet",
                replicas=self.settings.replicas,
                backend=self._backend,
                max_queue=self.settings.max_queue,
                shed_policy=self.settings.shed_policy,
            )
            self._root_span.__enter__()
        for key in self.registry.keys():
            self._blocks[key] = SharedWeights(key, self.registry.get(key).module)
        self.router = Router(
            max_queue=self.settings.max_queue,
            shed_policy=self.settings.shed_policy,
            client_rate=self.settings.client_rate,
            client_burst=self.settings.client_burst,
            chunk=self.settings.chunk,
            replica_cap=self.settings.replica_cap,
            registry=self.metrics,
        )
        for position in range(self.settings.replicas):
            self._spawn(position, generation=0)
        self._running = True
        self._health = threading.Thread(
            target=self._health_loop, name="fleet-health", daemon=True
        )
        self._health.start()
        return self

    def _spawn(self, position: int, generation: int) -> None:
        cls = ProcessReplica if self._backend == "process" else ThreadReplica
        handle = cls(
            position, generation, self.registry, self._blocks,
            self.settings.batch, self.router,
        )
        with self._lock:
            slot = self._slots.get(position)
            if slot is None:
                self._slots[position] = _Slot(
                    position, generation, handle, time.monotonic()
                )
            else:
                slot.generation = generation
                slot.handle = handle
                slot.spawned_at = time.monotonic()
        self.router.add_replica(position, handle.send, generation)

    def _health_loop(self) -> None:
        deadline = self.settings.replica_deadline_s
        while not self._stop.wait(self.settings.health_interval_s):
            with self._lock:
                slots = list(self._slots.values())
            for slot in slots:
                handle = slot.handle
                overrun = self.router.oldest_dispatch_age(slot.position) > deadline
                if handle.alive() and not overrun:
                    continue
                self._evict_and_respawn(slot, reason="deadline" if overrun else "crash")

    def _evict_and_respawn(self, slot: _Slot, reason: str) -> None:
        handle, generation = slot.handle, slot.generation
        self._evictions.inc()
        with self._lock:
            slot.evictions += 1
        # Requeue first so stranded requests fail over before the close
        # below floods the router with stale-generation callbacks.
        self.router.replica_failed(slot.position, generation)
        try:
            if handle.backend == "process" and handle.alive():
                handle.kill()
            handle.close()
        except Exception:  # pragma: no cover - dying replicas may misbehave
            pass
        self._emit("replica_evicted", position=slot.position,
                   generation=generation, reason=reason)
        if self._stop.is_set():
            return
        if self._respawns_left <= 0:
            return
        self._respawns_left -= 1
        self._spawn(slot.position, generation + 1)
        self._respawns.inc()
        self._emit("replica_respawned", position=slot.position,
                   generation=generation + 1)

    def _emit(self, name: str, **attrs) -> None:
        if self._telemetry is NULL:
            return
        with self._tel_lock:
            self._telemetry.event(name, **attrs)

    def close(self) -> None:
        """Evict everything, shed leftovers, release the shared blocks."""
        if not self._running:
            return
        self._running = False
        self._stop.set()
        if self._health is not None:
            self._health.join(timeout=5)
            self._health = None
        if self.router is not None:
            self.router.close()
        with self._lock:
            slots = list(self._slots.values())
            self._slots.clear()
        for slot in slots:
            try:
                slot.handle.close()
            except Exception:  # pragma: no cover - crashed replicas
                pass
        for block in self._blocks.values():
            block.close(unlink=True)
        self._blocks.clear()
        if self._root_span is not None:
            with self._tel_lock:
                self._telemetry.event(
                    "metrics_snapshot", metrics=self.metrics.snapshot()
                )
            self._root_span.set(
                evictions=self._evictions.value, respawns=self._respawns.value
            )
            self._root_span.__exit__(None, None, None)
            self._root_span = None

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request path --------------------------------------------------
    def submit(
        self,
        key: "ModelKey | str",
        sample: np.ndarray,
        client: "str | None" = None,
        priority: int = 0,
    ):
        """Admit one sample through the router; returns a future of its row.

        Raises :class:`~repro.serve.router.ShedError` immediately when
        admission control refuses the request.
        """
        if not self._running:
            raise RuntimeError("fleet is not running (call start())")
        if isinstance(key, str):
            key = ModelKey.parse(key)
        self.registry.get(key)  # unknown model fails the caller immediately
        started = time.monotonic()
        future = self.router.submit(key, sample, client=client, priority=priority)
        future.add_done_callback(
            lambda f: self._request_latency.observe(time.monotonic() - started)
            if f.exception() is None else None
        )
        return future

    def predict(
        self,
        key: "ModelKey | str",
        inputs: np.ndarray,
        timeout: "float | None" = 30.0,
        client: "str | None" = None,
        priority: int = 0,
    ) -> np.ndarray:
        """Predict logits for one sample or a stack — the engine-compatible API.

        Samples are admitted individually (the equivalence unit), so the
        result is bitwise-identical however the router spreads them across
        replicas.  If admission sheds a sample the whole call raises
        :class:`ShedError`; already-admitted samples complete internally.
        """
        inputs = np.asarray(inputs)
        servable = self.registry.get(key)
        sample_ndim = 1 if servable.key.model == "mlp" else 3
        batch = inputs if inputs.ndim > sample_ndim else inputs[None]
        futures = [
            self.submit(servable.key, sample, client=client, priority=priority)
            for sample in batch
        ]
        rows = [future.result(timeout=timeout) for future in futures]
        out = np.stack(rows)
        return out if inputs.ndim > sample_ndim else out[0]

    # -- chaos hooks (tests / CI harness) -------------------------------
    def kill_replica(self, position: int) -> None:
        """Crash one replica abruptly; the health monitor evicts + respawns."""
        with self._lock:
            handle = self._slots[position].handle
        handle.kill()

    def slow_replica(self, position: int, delay_s: float) -> None:
        """Wedge one replica: every inference stalls ``delay_s`` seconds."""
        with self._lock:
            handle = self._slots[position].handle
        handle.set_slow(delay_s)

    def replica_pids(self) -> "list[int]":
        with self._lock:
            return [slot.handle.pid for slot in self._slots.values()]

    # -- introspection ---------------------------------------------------
    def healthy_replicas(self) -> int:
        with self._lock:
            return sum(1 for slot in self._slots.values() if slot.handle.alive())

    def describe(self) -> dict:
        """JSON-shaped fleet status (the ``/fleet`` endpoint payload)."""
        with self._lock:
            replicas = [
                {
                    "position": slot.position,
                    "generation": slot.generation,
                    "alive": slot.handle.alive(),
                    "evictions": slot.evictions,
                    "uptime_s": round(time.monotonic() - slot.spawned_at, 3),
                    **slot.handle.describe(),
                }
                for slot in sorted(self._slots.values(), key=lambda s: s.position)
            ]
        return {
            "backend": self._backend,
            "replicas": replicas,
            "evictions": self._evictions.value,
            "respawns": self._respawns.value,
            "router": self.router.snapshot() if self.router else {},
            "models": [key.id for key in self.registry.keys()],
            "settings": {
                "replicas": self.settings.replicas,
                "max_queue": self.settings.max_queue,
                "shed_policy": self.settings.shed_policy,
                "client_rate": self.settings.client_rate,
                "replica_deadline_s": self.settings.replica_deadline_s,
            },
        }

    def stats_snapshot(self) -> dict:
        """The ``/stats`` payload in fleet mode: router + latency summary."""
        router = self.router.snapshot() if self.router else {}
        return {
            "requests": router.get("requests", 0),
            "accepted": router.get("accepted", 0),
            "shed": router.get("shed", 0),
            "errors": router.get("errors", 0),
            "queued": router.get("queued", 0),
            "evictions": self._evictions.value,
            "respawns": self._respawns.value,
            "latency_ms": latency_summary_ms(self._request_latency),
            "router": router,
        }
