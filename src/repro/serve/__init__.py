"""``repro.serve`` — model serving with micro-batched inference.

The deployment-facing end of the study pipeline: trained models (loaded from
``save_model`` archives or deterministically re-fit from archived study
cells) are registered in a :class:`ModelRegistry` and served through a
:class:`ServingEngine` that coalesces concurrent predict requests into
micro-batches — with the guarantee that batching never changes a single bit
of any response.  An optional stdlib-only HTTP front-end
(:class:`ServingServer`) exposes the engine as a JSON endpoint for the
``repro-study serve`` CLI subcommand.
"""

from .engine import BatchSettings, ServingEngine, ServingStats
from .registry import ModelKey, ModelRegistry, ServableModel
from .server import ServingServer, serve_forever

__all__ = [
    "ModelKey",
    "ServableModel",
    "ModelRegistry",
    "BatchSettings",
    "ServingStats",
    "ServingEngine",
    "ServingServer",
    "serve_forever",
]
