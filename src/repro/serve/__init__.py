"""``repro.serve`` — model serving, from one engine to a replicated fleet.

The deployment-facing end of the study pipeline: trained models (loaded from
``save_model`` archives or deterministically re-fit from archived study
cells) are registered in a :class:`ModelRegistry` and served through a
:class:`ServingEngine` that coalesces concurrent predict requests into
micro-batches — with the guarantee that batching never changes a single bit
of any response.

At fleet scale, a :class:`ServingFleet` runs N health-checked replicas
(threads or forked processes) over a single shared-memory copy of every
model's weights (:class:`SharedWeights`), behind a :class:`Router` that
does bounded admission, per-client token-bucket fairness, priorities,
least-outstanding dispatch, and exactly-once failover when replicas die.
An optional stdlib-only HTTP front-end (:class:`ServingServer`) exposes
either an engine or a fleet as a JSON endpoint for the ``repro-study
serve`` CLI subcommand (429 + ``Retry-After`` on shed, ``/fleet`` status).
"""

from .engine import BatchSettings, EngineClosedError, ServingEngine, ServingStats
from .fleet import (
    REPLICA_BACKENDS,
    FleetSettings,
    ProcessReplica,
    ServingFleet,
    SharedWeights,
    ThreadReplica,
)
from .registry import ModelKey, ModelRegistry, ServableModel
from .router import SHED_POLICIES, Chunk, ReplicaGone, Router, ShedError, TokenBucket
from .server import ServingServer, serve_forever

__all__ = [
    "ModelKey",
    "ServableModel",
    "ModelRegistry",
    "BatchSettings",
    "ServingStats",
    "ServingEngine",
    "EngineClosedError",
    "Router",
    "Chunk",
    "ShedError",
    "ReplicaGone",
    "TokenBucket",
    "SHED_POLICIES",
    "ServingFleet",
    "FleetSettings",
    "SharedWeights",
    "ThreadReplica",
    "ProcessReplica",
    "REPLICA_BACKENDS",
    "ServingServer",
    "serve_forever",
]
