"""Fault-aware training — the sixth mitigation technique (extension).

The paper's five techniques harden models against *training-data* faults;
this extension hardens them against *hardware* faults at inference time by
training under simulated faults, the noise-injection recipe of fault-aware
training literature (e.g. Ranger/FT-ClipAct-style robustness work):

- ``mode="weight"`` perturbs every parameter with seeded Gaussian noise
  (scaled to each parameter's RMS magnitude) before each batch's forward
  pass and removes exactly that noise after the optimiser step — the
  gradient is taken at the perturbed point, but the update applies to the
  clean weights, so the fit converges to flat minima that tolerate weight
  corruption.
- ``mode="activation"`` trains with an armed hardware-fault injector
  (:class:`~repro.faults.hardware.injector.HardwareFaultInjector`) on the
  kernel output tap, corrupting activations exactly as an inference-time
  campaign would.  The tap only fires while gradients are enabled, so any
  ``no_grad`` evaluation stays bitwise-clean.

Everything is seeded from the technique's fit RNG, so fits are deterministic
and identical across worker processes.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.functional import kernel_tap_scope
from ..nn.losses import CrossEntropy
from ..nn.tensor import is_grad_enabled
from .base import MitigationTechnique, SingleModelFitted, TrainingBudget

__all__ = ["FaultAwareTrainingTechnique"]


class _WeightNoiseHook:
    """Paired Trainer hooks implementing transient weight noise.

    ``before_batch`` adds per-parameter Gaussian noise in place (stored for
    removal); ``after_step`` subtracts it after the optimiser step.  Net
    effect per batch: gradients are computed at the noisy point, the update
    delta lands on the clean weights.
    """

    def __init__(self, model, sigma: float, rng: np.random.Generator) -> None:
        self.params = [param for _, param in model.named_parameters()]
        self.sigma = sigma
        self.rng = rng
        self._noise: "list[np.ndarray] | None" = None

    def before_batch(self, model, xb: np.ndarray, yb: np.ndarray) -> None:
        noise = []
        for param in self.params:
            rms = float(np.sqrt(np.mean(param.data.astype(np.float64) ** 2)))
            scale = self.sigma * max(rms, 1e-3)
            sample = (self.rng.standard_normal(param.data.shape) * scale).astype(np.float32)
            param.data += sample
            noise.append(sample)
        self._noise = noise

    def after_step(self, epoch: int, batch: int, loss: float) -> None:
        if self._noise is None:  # pragma: no cover - defensive
            return
        for param, sample in zip(self.params, self._noise):
            param.data -= sample
        self._noise = None


class FaultAwareTrainingTechnique(MitigationTechnique):
    """Train under simulated hardware faults for inference-time robustness.

    Parameters are plain numbers/strings so instances pickle cleanly into
    study worker processes (``build_technique`` reconstructs from kwargs).

    ``sigma`` scales the weight-noise standard deviation (relative to each
    parameter's RMS) in ``weight`` mode; ``hw_rate``/``hw_type`` configure
    the activation injector in ``activation`` mode.
    """

    name = "fault_aware"
    abbreviation = "FA"

    def __init__(
        self,
        sigma: float = 0.02,
        mode: str = "weight",
        hw_rate: float = 1e-3,
        hw_type: str = "bit_flip",
    ) -> None:
        if mode not in ("weight", "activation"):
            raise ValueError(f"mode must be 'weight' or 'activation'; got {mode!r}")
        if sigma < 0.0:
            raise ValueError(f"sigma must be >= 0; got {sigma}")
        self.sigma = sigma
        self.mode = mode
        self.hw_rate = hw_rate
        self.hw_type = hw_type

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> SingleModelFitted:
        """Build and fit ``model_name`` under the configured fault regime."""
        # Local import: repro.faults.hardware sits above mitigation in the
        # import graph only at runtime (its campaign fits techniques), so
        # binding it lazily keeps package import order unconstrained.
        from ..faults.hardware.injector import HardwareFaultInjector
        from ..faults.hardware.spec import HardwareFaultSpec

        model = self._build(model_name, train, budget, rng)
        noise_rng = np.random.default_rng(int(rng.integers(2**31)))
        if self.mode == "weight":
            hook = _WeightNoiseHook(model, self.sigma, noise_rng)
            history, seconds = self._train(
                model, CrossEntropy(), train, budget, rng,
                batch_hook=hook.before_batch,
                batch_callback=hook.after_step,
            )
        else:
            spec = HardwareFaultSpec(
                fault_type=self.hw_type, rate=self.hw_rate, target="activation"
            )
            injector = HardwareFaultInjector(spec, int(noise_rng.integers(2**31)))

            def tap(site: str, array: np.ndarray) -> None:
                # Training forwards only — no_grad evaluation stays clean.
                if not is_grad_enabled():
                    return
                amax = float(np.abs(array).max()) if array.size else 0.0
                if injector.perturb(site, array):
                    # Ranger-style range restriction: a flipped exponent bit
                    # yields inf/NaN or astronomically large values that would
                    # diverge training immediately; clamp corruption to the
                    # clean tensor's dynamic range so the model learns under
                    # survivable faults.
                    np.nan_to_num(
                        array, copy=False, nan=0.0, posinf=amax, neginf=-amax
                    )
                    np.clip(array, -amax, amax, out=array)

            with kernel_tap_scope(tap):
                history, seconds = self._train(
                    model, CrossEntropy(), train, budget, rng
                )
        return SingleModelFitted(f"fault_aware/{model_name}", model, seconds, history)
