"""Label smoothing — TDFM approach 1 (paper §III-B1).

The representative technique is *label relaxation* (Lienen & Hüllermeier,
AAAI'21), which generalises uniform label smoothing: instead of a fixed
smoothed target, the target is the credal set of distributions assigning at
least ``1 - alpha`` probability to the observed label.  Classic uniform
smoothing (``q_i = (1 - alpha) p_i + alpha / K``) is available as a mode for
ablations.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.transforms import smooth_labels
from ..nn.losses import LabelRelaxationLoss, SoftTargetCrossEntropy
from .base import FittedModel, MitigationTechnique, SingleModelFitted, TrainingBudget

__all__ = ["LabelSmoothingTechnique"]


class LabelSmoothingTechnique(MitigationTechnique):
    """Classic uniform label smoothing (default) or label relaxation.

    Parameters
    ----------
    alpha:
        Smoothing/relaxation strength.
    mode:
        ``"uniform"`` (default) — classic uniform label smoothing — or
        ``"relaxation"`` — the paper's representative Label Relaxation loss.
        The default deviates from the paper: in this reproduction's substrate
        the credal-set masking of label relaxation underperforms uniform
        smoothing under label noise (see the ablation benchmark
        ``bench_ablations.py`` and EXPERIMENTS.md), so uniform smoothing is
        used to reproduce the paper's LS trends.
    """

    name = "label_smoothing"
    abbreviation = "LS"

    def __init__(self, alpha: float = 0.2, mode: str = "uniform") -> None:
        if mode not in ("relaxation", "uniform"):
            raise ValueError(f"mode must be 'relaxation' or 'uniform'; got {mode!r}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1); got {alpha}")
        self.alpha = alpha
        self.mode = mode

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        model = self._build(model_name, train, budget, rng)
        if self.mode == "relaxation":
            loss = LabelRelaxationLoss(alpha=self.alpha)
            history, seconds = self._train(model, loss, train, budget, rng)
        else:
            loss = SoftTargetCrossEntropy()
            history, seconds = self._train(
                model,
                loss,
                train,
                budget,
                rng,
                target_transform=lambda targets: smooth_labels(targets, self.alpha),
            )
        return SingleModelFitted(f"label_smoothing/{model_name}", model, seconds, history)

    def __repr__(self) -> str:
        return f"LabelSmoothingTechnique(alpha={self.alpha}, mode={self.mode!r})"
