"""The unprotected baseline: plain cross-entropy training (paper Fig. 2)."""

from __future__ import annotations

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.losses import CrossEntropy
from .base import FittedModel, MitigationTechnique, SingleModelFitted, TrainingBudget

__all__ = ["BaselineTechnique"]


class BaselineTechnique(MitigationTechnique):
    """Standard training with the cross-entropy loss and no protection."""

    name = "baseline"
    abbreviation = "Base"

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        model = self._build(model_name, train, budget, rng)
        history, seconds = self._train(model, CrossEntropy(), train, budget, rng)
        return SingleModelFitted(f"baseline/{model_name}", model, seconds, history)
