"""Ensemble learning — TDFM approach 5 (paper §III-B5).

Multiple architecturally diverse models train independently on the same
(faulty) data and vote at inference time.  The paper's ensemble is the five
models with the lowest baseline AD — ConvNet, MobileNet, ResNet18, VGG11,
and VGG16 — combined with simple majority voting; ties are broken by the
summed class probabilities of the members.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.losses import CrossEntropy
from ..nn.trainer import predict_proba
from .base import FittedModel, MitigationTechnique, SingleModelFitted, TrainingBudget

__all__ = ["EnsembleFitted", "EnsembleTechnique", "PAPER_ENSEMBLE_MEMBERS"]

#: The five members the paper selects (§IV: lowest baseline AD).
PAPER_ENSEMBLE_MEMBERS = ("convnet", "mobilenet", "resnet18", "vgg11", "vgg16")


class EnsembleFitted(FittedModel):
    """A majority-voting ensemble of fitted member models."""

    def __init__(self, name: str, members: list[SingleModelFitted], num_classes: int) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        super().__init__(name, training_time_s=sum(m.cost.training_s for m in members))
        self.members = members
        self.num_classes = num_classes

    def _member_probs(self, images: np.ndarray) -> np.ndarray:
        """(M, N, K) stack of member probability predictions."""
        return np.stack([predict_proba(m.model, images) for m in self.members])

    def _predict(self, images: np.ndarray) -> np.ndarray:
        probs = self._member_probs(images)
        votes = probs.argmax(axis=2)  # (M, N)
        counts = np.apply_along_axis(
            lambda col: np.bincount(col, minlength=self.num_classes), 0, votes
        )  # (K, N)
        max_votes = counts.max(axis=0)  # (N,)
        summed = probs.sum(axis=0).T  # (K, N) tie-break scores
        # Majority vote; among tied classes pick the highest summed probability.
        tie_break = np.where(counts == max_votes, summed, -np.inf)
        return tie_break.argmax(axis=0)

    def _predict_proba(self, images: np.ndarray) -> np.ndarray:
        return self._member_probs(images).mean(axis=0)

    def agreement(self, images: np.ndarray) -> np.ndarray:
        """Per-input fraction of members that voted for the winning class."""
        probs = self._member_probs(images)
        votes = probs.argmax(axis=2)
        winners = self._predict(images)
        return (votes == winners[None, :]).mean(axis=0)


class EnsembleTechnique(MitigationTechnique):
    """Train ``n`` diverse architectures and majority-vote their predictions.

    Parameters
    ----------
    members:
        Architecture names; defaults to the paper's five-member ensemble.
        The ``model_name`` argument of :meth:`fit` is ignored (the ensemble
        *is* the model), matching how the paper reports one ensemble per
        dataset rather than per architecture.
    """

    name = "ensemble"
    abbreviation = "Ens"

    def __init__(self, members: tuple[str, ...] = PAPER_ENSEMBLE_MEMBERS) -> None:
        if len(members) < 1:
            raise ValueError("ensemble needs at least one member")
        if len(members) % 2 == 0:
            raise ValueError("use an odd member count so majority voting cannot deadlock")
        self.members = tuple(members)

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,  # noqa: ARG002 - the ensemble defines its own members
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        fitted_members: list[SingleModelFitted] = []
        for member_name in self.members:
            member_rng = np.random.default_rng(rng.integers(0, 2**63))
            model = self._build(member_name, train, budget, member_rng)
            history, seconds = self._train(
                model, CrossEntropy(), train, budget, member_rng
            )
            fitted_members.append(
                SingleModelFitted(f"ensemble-member/{member_name}", model, seconds, history)
            )
        return EnsembleFitted(
            f"ensemble[{','.join(self.members)}]", fitted_members, train.num_classes
        )

    def __repr__(self) -> str:
        return f"EnsembleTechnique(members={self.members})"
