"""Robust loss — TDFM approach 3 (paper §III-B3).

The representative technique is the Active-Passive Loss of Ma et al.
(ICML'20): ``L_APL = alpha * L_active + beta * L_passive`` with Normalized
Cross Entropy as the active term (noise-robust but underfitting-prone) and
Reverse Cross Entropy as the passive term (counteracting that underfitting).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.losses import (
    ActivePassiveLoss,
    Loss,
    NormalizedCrossEntropy,
    NormalizedFocalLoss,
    ReverseCrossEntropy,
    MeanAbsoluteError,
)
from .base import FittedModel, MitigationTechnique, SingleModelFitted, TrainingBudget

__all__ = ["RobustLossTechnique"]

_ACTIVE_LOSSES: dict[str, type[Loss]] = {
    "nce": NormalizedCrossEntropy,
    "nfl": NormalizedFocalLoss,
}
_PASSIVE_LOSSES: dict[str, type[Loss]] = {
    "rce": ReverseCrossEntropy,
    "mae": MeanAbsoluteError,
}


class RobustLossTechnique(MitigationTechnique):
    """Active-Passive Loss training (NCE+RCE by default).

    Parameters
    ----------
    alpha, beta:
        Weights of the active and passive terms.  ``None`` (default) follows
        Ma et al.'s recommendations: ``alpha=1, beta=1`` for few-class
        datasets and ``alpha=10, beta=0.1`` for many-class datasets (their
        CIFAR-100 setting), selected by the training data's class count.
    active, passive:
        Term choices (``"nce"``/``"nfl"`` and ``"rce"``/``"mae"``) for the
        ablation benchmark; the paper evaluates NCE+RCE.
    """

    name = "robust_loss"
    abbreviation = "RL"

    #: Class count above which the many-class hyperparameters apply.
    MANY_CLASSES = 20

    def __init__(
        self,
        alpha: float | None = None,
        beta: float | None = None,
        active: str = "nce",
        passive: str = "rce",
    ) -> None:
        if active not in _ACTIVE_LOSSES:
            raise ValueError(f"active must be one of {sorted(_ACTIVE_LOSSES)}; got {active!r}")
        if passive not in _PASSIVE_LOSSES:
            raise ValueError(f"passive must be one of {sorted(_PASSIVE_LOSSES)}; got {passive!r}")
        self.alpha = alpha
        self.beta = beta
        self.active = active
        self.passive = passive

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        model = self._build(model_name, train, budget, rng)
        many = train.num_classes > self.MANY_CLASSES
        alpha = self.alpha if self.alpha is not None else (10.0 if many else 1.0)
        beta = self.beta if self.beta is not None else (0.1 if many else 1.0)
        loss = ActivePassiveLoss(
            active=_ACTIVE_LOSSES[self.active](),
            passive=_PASSIVE_LOSSES[self.passive](),
            alpha=alpha,
            beta=beta,
        )
        history, seconds = self._train(model, loss, train, budget, rng)
        return SingleModelFitted(f"robust_loss/{model_name}", model, seconds, history)

    def __repr__(self) -> str:
        return (
            f"RobustLossTechnique(alpha={self.alpha}, beta={self.beta}, "
            f"active={self.active!r}, passive={self.passive!r})"
        )
