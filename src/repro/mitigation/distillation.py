"""Knowledge distillation — TDFM approach 4 (paper §III-B4).

The paper uses *self distillation* (Zhang et al., 2019): the teacher and the
student share the same architecture.  The teacher is trained normally with
cross entropy; the student is then trained with the combined hard/soft loss
of Hinton et al., where the soft targets are the teacher's distilled softmax
at temperature ``T > 1``.

The student converges faster than the teacher (it starts from informative
soft targets), which is why the paper measures ~1.5× rather than 2× training
overhead (§IV-E); we reproduce that by giving the student half the epoch
budget.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn import EarlyStopping, Module, softmax_np
from ..nn.losses import CrossEntropy, DistillationLoss
from ..nn.tensor import Tensor, no_grad
from .base import FittedModel, MitigationTechnique, SingleModelFitted, TrainingBudget

__all__ = ["SelfDistillationTechnique"]


class SelfDistillationTechnique(MitigationTechnique):
    """Self distillation with a distilled-softmax student objective.

    Parameters
    ----------
    alpha:
        Weight of the soft (teacher) term in the student loss.  Larger alpha
        gives more weight to the teacher's information — the paper's
        "garbage in, garbage out" failure mode at high mislabelling rates
        happens precisely because the student trusts a bad teacher.
    temperature:
        Distillation temperature ``T`` (Hinton et al. recommend 2–5).
    student_epoch_factor:
        Optional cap on the fraction of the budget's epochs the student may
        use; the student also early-stops on loss plateau, which is what
        yields the paper's ~1.5× (rather than 2×) training overhead.
    """

    name = "knowledge_distillation"
    abbreviation = "KD"

    def __init__(
        self,
        alpha: float = 0.5,
        temperature: float = 2.0,
        student_epoch_factor: float = 1.0,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1]; got {alpha}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive; got {temperature}")
        if not 0.0 < student_epoch_factor <= 1.0:
            raise ValueError(f"student_epoch_factor must be in (0, 1]; got {student_epoch_factor}")
        self.alpha = alpha
        self.temperature = temperature
        self.student_epoch_factor = student_epoch_factor

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        # Phase 1: teacher = the same architecture, trained with plain CE.
        teacher = self._build(model_name, train, budget, rng)
        _, teacher_seconds = self._train(teacher, CrossEntropy(), train, budget, rng)
        teacher.eval()

        # Phase 2: student (same architecture — *self* distillation) trained
        # against the teacher's distilled softmax plus the hard labels.
        student = self._build(model_name, train, budget, rng)
        loss = DistillationLoss(alpha=self.alpha, temperature=self.temperature)

        def refresh_teacher_probs(_model: Module, x_batch: np.ndarray, _y: np.ndarray) -> None:
            with no_grad():
                logits = teacher(Tensor(x_batch))
                loss.set_teacher_probs(
                    softmax_np(logits.data, axis=1, temperature=self.temperature)
                )

        student_budget = budget.scaled_epochs(self.student_epoch_factor)
        history, student_seconds = self._train(
            student,
            loss,
            train,
            student_budget,
            rng,
            batch_hook=refresh_teacher_probs,
            early_stopping=EarlyStopping(patience=4),
        )
        fitted = SingleModelFitted(
            f"knowledge_distillation/{model_name}",
            student,
            teacher_seconds + student_seconds,
            history,
        )
        return fitted

    def __repr__(self) -> str:
        return (
            f"SelfDistillationTechnique(alpha={self.alpha}, temperature={self.temperature}, "
            f"student_epoch_factor={self.student_epoch_factor})"
        )
