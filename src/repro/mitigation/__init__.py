"""``repro.mitigation`` — the five TDFM techniques plus the unprotected baseline."""

from .base import FittedModel, MitigationTechnique, SingleModelFitted, TrainingBudget
from .baseline import BaselineTechnique
from .co_teaching import CoTeachingFitted, CoTeachingTechnique
from .distillation import SelfDistillationTechnique
from .ensemble import PAPER_ENSEMBLE_MEMBERS, EnsembleFitted, EnsembleTechnique
from .fault_aware import FaultAwareTrainingTechnique
from .label_correction import LabelCorrector, MetaLabelCorrectionTechnique
from .label_smoothing import LabelSmoothingTechnique
from .registry import (
    EXTENSION_TECHNIQUES,
    TECHNIQUE_ABBREVIATIONS,
    TECHNIQUES,
    build_technique,
    technique_names,
    validate_techniques,
)
from .robust_loss import RobustLossTechnique

__all__ = [
    "TrainingBudget",
    "FittedModel",
    "SingleModelFitted",
    "MitigationTechnique",
    "BaselineTechnique",
    "CoTeachingTechnique",
    "CoTeachingFitted",
    "FaultAwareTrainingTechnique",
    "LabelSmoothingTechnique",
    "MetaLabelCorrectionTechnique",
    "LabelCorrector",
    "RobustLossTechnique",
    "SelfDistillationTechnique",
    "EnsembleTechnique",
    "EnsembleFitted",
    "PAPER_ENSEMBLE_MEMBERS",
    "TECHNIQUES",
    "EXTENSION_TECHNIQUES",
    "TECHNIQUE_ABBREVIATIONS",
    "technique_names",
    "build_technique",
    "validate_techniques",
]
