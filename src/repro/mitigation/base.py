"""Common interface for training-data fault mitigation (TDFM) techniques.

Every technique consumes a (possibly fault-injected) training dataset and a
*training budget* — the shared loop geometry that keeps the comparison
"apples-to-apples" (paper §III-A) — and produces a :class:`FittedModel` that
can predict labels and report its runtime cost (§IV-E).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..data.dataset import ArrayDataset
from ..metrics.overhead import RuntimeCost
from ..models.registry import build_model
from ..nn import SGD, Adam, Module, Trainer, TrainHistory
from ..nn.losses import Loss
from ..nn.trainer import predict_labels, predict_proba

__all__ = ["TrainingBudget", "FittedModel", "SingleModelFitted", "MitigationTechnique"]


@dataclass(frozen=True)
class TrainingBudget:
    """Shared training-loop geometry for all techniques.

    The paper trains every technique on identical datasets and architectures
    with the implementers' recommended hyperparameters; this budget captures
    the loop parameters that stay fixed across techniques.
    """

    epochs: int = 12
    batch_size: int = 32
    learning_rate: float = 3e-3
    optimizer: str = "adam"  # "adam" or "sgd"
    momentum: float = 0.9  # sgd only
    weight_decay: float = 0.0
    clip_norm: float | None = 5.0
    width: int | None = None  # None = per-model registry default

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd'; got {self.optimizer!r}")

    def scaled_epochs(self, factor: float) -> "TrainingBudget":
        """A copy with epochs scaled by ``factor`` (min 1)."""
        return replace(self, epochs=max(1, round(self.epochs * factor)))

    def make_optimizer(self, params: list) -> "SGD | Adam":
        """Build the configured optimiser over ``params``."""
        if self.optimizer == "adam":
            return Adam(params, lr=self.learning_rate, weight_decay=self.weight_decay)
        return SGD(
            params,
            lr=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )


class FittedModel:
    """A trained predictor with runtime-cost accounting."""

    def __init__(self, name: str, training_time_s: float) -> None:
        self.name = name
        self.cost = RuntimeCost(training_s=training_time_s)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Hard label predictions; accumulates inference time into :attr:`cost`."""
        start = time.perf_counter()
        labels = self._predict(images)
        self.cost.inference_s += time.perf_counter() - start
        return labels

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        """Class-probability predictions (not timed; used by analyses)."""
        return self._predict_proba(images)

    def _predict(self, images: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _predict_proba(self, images: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SingleModelFitted(FittedModel):
    """A fitted single network."""

    def __init__(
        self, name: str, model: Module, training_time_s: float, history: TrainHistory | None = None
    ) -> None:
        super().__init__(name, training_time_s)
        self.model = model
        self.history = history

    def _predict(self, images: np.ndarray) -> np.ndarray:
        return predict_labels(self.model, images)

    def _predict_proba(self, images: np.ndarray) -> np.ndarray:
        return predict_proba(self.model, images)


class MitigationTechnique:
    """Base class for the five TDFM approaches plus the unprotected baseline."""

    #: Registry identifier, e.g. ``"label_smoothing"``.
    name = "technique"
    #: Paper abbreviation used in tables, e.g. ``"LS"``.
    abbreviation = "?"

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        """Train a protected model on (possibly faulty) ``train`` data."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _build(
        model_name: str,
        train: ArrayDataset,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> Module:
        return build_model(
            model_name,
            image_shape=train.image_shape,
            num_classes=train.num_classes,
            width=budget.width,
            rng=rng,
        )

    @staticmethod
    def _train(
        model: Module,
        loss: Loss,
        train: ArrayDataset,
        budget: TrainingBudget,
        rng: np.random.Generator,
        **trainer_kwargs: object,
    ) -> tuple[TrainHistory, float]:
        """Run the shared training loop; returns (history, wall-clock seconds)."""
        optimizer = budget.make_optimizer(model.parameters())
        optimizer.lr *= getattr(model, "lr_multiplier", 1.0)
        trainer = Trainer(
            model,
            loss,
            optimizer,
            epochs=budget.epochs,
            batch_size=budget.batch_size,
            rng=rng,
            clip_norm=budget.clip_norm,
            **trainer_kwargs,  # type: ignore[arg-type]
        )
        start = time.perf_counter()
        history = trainer.fit(train.images, train.one_hot_labels())
        return history, time.perf_counter() - start
