"""Co-teaching — extension technique (beyond the paper's five).

Co-teaching (Han et al., NeurIPS'18) is a prominent family in the
noisy-label surveys the paper draws on (its refs. [13, 37–39]): two networks
train simultaneously, and in every mini-batch each network selects the
*small-loss* examples (those most likely to be correctly labelled) for its
peer to learn from.  The selected fraction shrinks from 1 to
``1 - forget_rate`` over ``warmup_epochs``, tracking the memorization
effect — networks fit clean patterns before noise.

The paper's §III-A selection excludes combination techniques and the
representative set stops at five approaches; co-teaching is provided here as
a clearly-flagged extension so the harness can compare against this family
too (``build_technique("co_teaching")``).
"""

from __future__ import annotations

import time

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn import Module, Tensor
from ..nn.functional import log_softmax
from ..nn.trainer import predict_labels, predict_proba
from .base import FittedModel, MitigationTechnique, TrainingBudget

__all__ = ["CoTeachingTechnique", "CoTeachingFitted"]


class CoTeachingFitted(FittedModel):
    """The pair of co-trained networks; predictions average both."""

    def __init__(self, name: str, model_a: Module, model_b: Module, training_time_s: float) -> None:
        super().__init__(name, training_time_s)
        self.model_a = model_a
        self.model_b = model_b

    def _predict_proba(self, images: np.ndarray) -> np.ndarray:
        return 0.5 * (predict_proba(self.model_a, images) + predict_proba(self.model_b, images))

    def _predict(self, images: np.ndarray) -> np.ndarray:
        return self._predict_proba(images).argmax(axis=1)


class CoTeachingTechnique(MitigationTechnique):
    """Two peer networks exchanging small-loss examples.

    Parameters
    ----------
    forget_rate:
        Final fraction of each batch discarded as probably-mislabelled.
        Han et al. recommend setting it to (an estimate of) the noise rate;
        a conservative 0.2 is the default.
    warmup_epochs:
        Epochs over which the kept fraction anneals from 1 to
        ``1 - forget_rate``.  ``None`` (default) uses half the budget's
        epochs — annealing too fast starves the networks of data before they
        have learned the clean patterns.
    """

    name = "co_teaching"
    abbreviation = "CoT"

    def __init__(self, forget_rate: float = 0.2, warmup_epochs: int | None = None) -> None:
        if not 0.0 <= forget_rate < 1.0:
            raise ValueError(f"forget_rate must be in [0, 1); got {forget_rate}")
        if warmup_epochs is not None and warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.forget_rate = forget_rate
        self.warmup_epochs = warmup_epochs

    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        start = time.perf_counter()
        model_a = self._build(model_name, train, budget, rng)
        model_b = self._build(model_name, train, budget, rng)
        optimizer_a = budget.make_optimizer(model_a.parameters())
        optimizer_b = budget.make_optimizer(model_b.parameters())
        for optimizer, model in ((optimizer_a, model_a), (optimizer_b, model_b)):
            optimizer.lr *= getattr(model, "lr_multiplier", 1.0)

        images = train.images
        targets = train.one_hot_labels()
        n = len(train)
        warmup = self.warmup_epochs or max(1, budget.epochs // 2)
        for epoch in range(budget.epochs):
            keep_fraction = 1.0 - self.forget_rate * min(1.0, (epoch + 1) / warmup)
            order = rng.permutation(n)
            model_a.train()
            model_b.train()
            for lo in range(0, n, budget.batch_size):
                idx = order[lo : lo + budget.batch_size]
                xb = Tensor(images[idx])
                yb = targets[idx]
                keep = max(1, int(round(keep_fraction * len(idx))))

                # Per-example losses under both networks (no tape needed yet).
                logits_a = model_a(xb)
                logits_b = model_b(xb)
                losses_a = self._per_example_ce(logits_a.data, yb)
                losses_b = self._per_example_ce(logits_b.data, yb)

                # Each network learns from its *peer's* small-loss selection.
                select_for_b = np.argsort(losses_a)[:keep]
                select_for_a = np.argsort(losses_b)[:keep]

                self._step(model_a, optimizer_a, logits_a, yb, select_for_a, budget)
                self._step(model_b, optimizer_b, logits_b, yb, select_for_b, budget)

        seconds = time.perf_counter() - start
        return CoTeachingFitted(f"co_teaching/{model_name}", model_a, model_b, seconds)

    @staticmethod
    def _per_example_ce(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return -(log_probs * targets).sum(axis=1)

    @staticmethod
    def _step(model, optimizer, logits, targets, selection, budget) -> None:
        """One gradient step on the selected subset of an already-run forward."""
        selected_logits = logits[selection]
        log_probs = log_softmax(selected_logits, axis=1)
        loss = -(log_probs * Tensor(targets[selection])).sum(axis=1).mean()
        optimizer.zero_grad()
        loss.backward()
        if budget.clip_norm is not None:
            optimizer.clip_grad_norm(budget.clip_norm)
        optimizer.step()
