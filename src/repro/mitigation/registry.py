"""Technique registry: the baseline plus the five TDFM approaches."""

from __future__ import annotations

from .base import MitigationTechnique
from .baseline import BaselineTechnique
from .co_teaching import CoTeachingTechnique
from .distillation import SelfDistillationTechnique
from .ensemble import EnsembleTechnique
from .fault_aware import FaultAwareTrainingTechnique
from .label_correction import MetaLabelCorrectionTechnique
from .label_smoothing import LabelSmoothingTechnique
from .robust_loss import RobustLossTechnique

__all__ = [
    "TECHNIQUES",
    "EXTENSION_TECHNIQUES",
    "build_technique",
    "technique_names",
    "validate_techniques",
    "TECHNIQUE_ABBREVIATIONS",
]

TECHNIQUES: dict[str, type[MitigationTechnique]] = {
    "baseline": BaselineTechnique,
    "label_smoothing": LabelSmoothingTechnique,
    "label_correction": MetaLabelCorrectionTechnique,
    "robust_loss": RobustLossTechnique,
    "knowledge_distillation": SelfDistillationTechnique,
    "ensemble": EnsembleTechnique,
}

#: Techniques beyond the paper's five approaches (clearly-flagged extensions;
#: excluded from the default study grids so benches reproduce the paper).
EXTENSION_TECHNIQUES: dict[str, type[MitigationTechnique]] = {
    "co_teaching": CoTeachingTechnique,
    "fault_aware": FaultAwareTrainingTechnique,
}

#: Paper table-header abbreviations, in Table IV column order.
TECHNIQUE_ABBREVIATIONS: dict[str, str] = {
    name: cls.abbreviation
    for name, cls in {**TECHNIQUES, **EXTENSION_TECHNIQUES}.items()
}


def technique_names(include_baseline: bool = True, include_extensions: bool = False) -> list[str]:
    """Registered technique names in paper column order.

    ``include_extensions=True`` appends techniques beyond the paper's five
    (currently co-teaching and fault-aware training).
    """
    names = list(TECHNIQUES)
    if not include_baseline:
        names.remove("baseline")
    if include_extensions:
        names.extend(EXTENSION_TECHNIQUES)
    return names


def validate_techniques(names: "list[str] | tuple[str, ...]") -> None:
    """Fail fast on unknown technique names (paper set or extensions).

    Called at *plan* time (:func:`repro.experiments.plan.plan_study`) so a
    typo aborts before any worker process is spawned or any cell is trained,
    rather than mid-sweep inside a subprocess.
    """
    unknown = [n for n in names if n not in TECHNIQUES and n not in EXTENSION_TECHNIQUES]
    if unknown:
        choices = sorted(TECHNIQUES) + sorted(EXTENSION_TECHNIQUES)
        raise KeyError(f"unknown technique(s) {unknown}; choices: {choices}")


def build_technique(name: str, **kwargs: object) -> MitigationTechnique:
    """Build a technique (paper set or extension) by registry name.

    Every registered class lives at module top level with plain-value
    constructor arguments, so built instances pickle across process
    boundaries — parallel executors rebuild them inside worker processes
    from (name, kwargs) carried by a ``WorkUnit``.
    """
    cls = TECHNIQUES.get(name) or EXTENSION_TECHNIQUES.get(name)
    if cls is None:
        choices = sorted(TECHNIQUES) + sorted(EXTENSION_TECHNIQUES)
        raise KeyError(f"unknown technique {name!r}; choices: {choices}")
    return cls(**kwargs)  # type: ignore[arg-type]
