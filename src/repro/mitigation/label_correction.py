"""Label correction — TDFM approach 2 (paper §III-B2).

The representative technique is Meta Label Correction (Zheng et al.,
AAAI'21): two networks train simultaneously — the *primary* model for the
classification task and a *secondary* corrector that rewrites suspicious
labels.  The secondary model needs a clean subset of the training data
(fraction γ, reserved from fault injection in artificial-noise experiments).

This reproduction keeps MLC's structure while replacing the second-order
meta-gradient with a first-order alternating scheme:

1. *Warm-up*: the primary model trains on all (noisy) data with CE.
2. Each correction round then alternates:
   a. the secondary MLP trains on the clean subset — its inputs are the
      primary model's predicted class probabilities concatenated with the
      observed one-hot label (clean labels are synthetically flipped at a
      simulated noise rate so the corrector learns to *undo* mislabelling);
   b. the primary model trains one epoch against the corrector's soft
      labels for the whole dataset.

Because the secondary model is a multilayer perceptron over a ``2K``-dim
input, its correction ability degrades as the class count ``K`` grows —
the mechanism behind the paper's finding that label correction underperforms
on GTSRB's 43 classes while doing well on CIFAR-10 (10) and Pneumonia (2)
(§IV-D).
"""

from __future__ import annotations

import time

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.transforms import one_hot
from ..nn import Adam, Dense, Module, ReLU, Sequential, Trainer, softmax_np
from ..nn.losses import CrossEntropy, SoftTargetCrossEntropy
from ..nn.tensor import Tensor, no_grad
from ..nn.trainer import predict_proba
from .base import FittedModel, MitigationTechnique, SingleModelFitted, TrainingBudget

__all__ = ["MetaLabelCorrectionTechnique", "LabelCorrector"]


class LabelCorrector(Module):
    """The secondary model: an MLP mapping (primary probs, observed label) to
    a corrected label distribution."""

    def __init__(self, num_classes: int, hidden: int = 64, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_classes = num_classes
        self.net = Sequential(
            Dense(2 * num_classes, hidden, rng=rng),
            ReLU(),
            Dense(hidden, hidden, rng=rng),
            ReLU(),
            Dense(hidden, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        return self.net(x)

    def correct(self, primary_probs: np.ndarray, observed_one_hot: np.ndarray) -> np.ndarray:
        """Corrected soft labels for a batch (inference, no tape)."""
        features = np.concatenate([primary_probs, observed_one_hot], axis=1).astype(np.float32)
        with no_grad():
            logits = self(Tensor(features))
            return softmax_np(logits.data, axis=1)


class MetaLabelCorrectionTechnique(MitigationTechnique):
    """Meta Label Correction with a clean-subset-trained MLP corrector.

    Parameters
    ----------
    clean_fraction:
        γ — the fraction of training data reserved as clean.  When the
        training dataset carries ``metadata["clean_indices"]`` (set by the
        fault-injection harness to the indices it protected), those are used
        instead and γ is ignored.
    corrector_hidden:
        Hidden width of the secondary MLP.
    warmup_fraction:
        Fraction of the epoch budget spent on CE warm-up before correction
        rounds begin.
    simulated_flip_rate:
        Label-flip rate used to synthesise corrupted examples from the clean
        subset when training the corrector.
    """

    name = "label_correction"
    abbreviation = "LC"

    def __init__(
        self,
        clean_fraction: float = 0.1,
        corrector_hidden: int = 64,
        warmup_fraction: float = 0.3,
        simulated_flip_rate: float = 0.35,
    ) -> None:
        if not 0.0 < clean_fraction < 1.0:
            raise ValueError(f"clean_fraction must be in (0, 1); got {clean_fraction}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must be in [0, 1); got {warmup_fraction}")
        if not 0.0 < simulated_flip_rate < 1.0:
            raise ValueError(f"simulated_flip_rate must be in (0, 1); got {simulated_flip_rate}")
        self.clean_fraction = clean_fraction
        self.corrector_hidden = corrector_hidden
        self.warmup_fraction = warmup_fraction
        self.simulated_flip_rate = simulated_flip_rate

    # ------------------------------------------------------------------
    def fit(
        self,
        train: ArrayDataset,
        model_name: str,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> FittedModel:
        start = time.perf_counter()
        num_classes = train.num_classes
        clean_indices = self._clean_indices(train, rng)

        primary = self._build(model_name, train, budget, rng)
        corrector = LabelCorrector(num_classes, hidden=self.corrector_hidden, rng=rng)

        warmup_epochs = max(1, round(budget.epochs * self.warmup_fraction))
        correction_rounds = max(1, budget.epochs - warmup_epochs)

        # Phase 1: CE warm-up of the primary model on all (noisy) data.
        warmup_budget = budget.scaled_epochs(warmup_epochs / budget.epochs)
        self._train(primary, CrossEntropy(), train, warmup_budget, rng)

        # Phase 2: alternate corrector updates and corrected-label training.
        one_hot_observed = train.one_hot_labels()
        soft_loss = SoftTargetCrossEntropy()
        primary_optimizer = budget.make_optimizer(primary.parameters())
        primary_optimizer.lr *= getattr(primary, "lr_multiplier", 1.0)
        history = None
        for _ in range(correction_rounds):
            primary_probs = predict_proba(primary, train.images)
            self._train_corrector(corrector, primary_probs, train, clean_indices, budget, rng)
            corrected = corrector.correct(primary_probs, one_hot_observed)
            # The clean subset keeps its observed (verified) labels.
            corrected[clean_indices] = one_hot_observed[clean_indices]
            trainer = Trainer(
                primary,
                soft_loss,
                primary_optimizer,
                epochs=1,
                batch_size=budget.batch_size,
                rng=rng,
                clip_norm=budget.clip_norm,
            )
            history = trainer.fit(train.images, corrected)

        seconds = time.perf_counter() - start
        fitted = SingleModelFitted(f"label_correction/{model_name}", primary, seconds, history)
        fitted.corrector = corrector  # exposed for analyses/tests
        return fitted

    # ------------------------------------------------------------------
    def _clean_indices(self, train: ArrayDataset, rng: np.random.Generator) -> np.ndarray:
        """Indices of the verified-clean subset (γ of the data)."""
        from ..data.dataset import stratified_indices

        if "clean_indices" in train.metadata:
            clean = np.asarray(train.metadata["clean_indices"], dtype=np.int64)
            if len(clean) == 0:
                raise ValueError("metadata['clean_indices'] is empty")
            if clean.min() < 0 or clean.max() >= len(train):
                raise ValueError("metadata['clean_indices'] out of range")
            return clean
        return stratified_indices(train.labels, self.clean_fraction, train.num_classes, rng)

    def _train_corrector(
        self,
        corrector: LabelCorrector,
        primary_probs: np.ndarray,
        train: ArrayDataset,
        clean_indices: np.ndarray,
        budget: TrainingBudget,
        rng: np.random.Generator,
    ) -> None:
        """One corrector update pass on the clean subset.

        Each clean example contributes two training rows: one with its true
        observed label (teach "keep good labels") and one with a synthetically
        flipped label (teach "undo mislabelling").
        """
        num_classes = train.num_classes
        clean_probs = primary_probs[clean_indices]
        clean_labels = train.labels[clean_indices]
        true_targets = one_hot(clean_labels, num_classes)

        flipped_labels = clean_labels.copy()
        flip_mask = rng.random(len(clean_labels)) < self.simulated_flip_rate
        offsets = rng.integers(1, num_classes, size=len(clean_labels))
        flipped_labels[flip_mask] = (clean_labels[flip_mask] + offsets[flip_mask]) % num_classes

        inputs = np.concatenate(
            [
                np.concatenate([clean_probs, true_targets], axis=1),
                np.concatenate([clean_probs, one_hot(flipped_labels, num_classes)], axis=1),
            ],
            axis=0,
        ).astype(np.float32)
        targets = np.concatenate([true_targets, true_targets], axis=0)

        optimizer = Adam(corrector.parameters(), lr=0.01)
        trainer = Trainer(
            corrector,
            CrossEntropy(),
            optimizer,
            epochs=3,
            batch_size=min(64, len(inputs)),
            rng=rng,
        )
        trainer.fit(inputs, targets)

    def __repr__(self) -> str:
        return (
            f"MetaLabelCorrectionTechnique(clean_fraction={self.clean_fraction}, "
            f"corrector_hidden={self.corrector_hidden})"
        )
