"""Bench: regenerate paper Fig. 3 (AD on GTSRB, mislabelling and removal).

Paper §IV-B/§IV-C: per-model panels of AD vs fault rate for every technique
on GTSRB.  Panels (a–d) inject mislabelling; (e–h) inject removal.  The
paper's shape findings:

- ensembles and label smoothing have the lowest AD (Observation 1);
- removal faults produce lower AD than mislabelling (Observation 2 context);
- techniques effective against mislabelling are also effective against
  removal (Observation 2).

At smoke scale two of the four models are run; set REPRO_SCALE=small (or
paper) for the full four-model grid.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ad_panel, render_panels
from repro.faults import FaultType


def _models(runner):
    if runner.scale.name == "smoke":
        return ("convnet", "vgg16")
    return ("resnet50", "vgg16", "convnet", "mobilenet")


def _collect(runner, rates, fault_type, models):
    return {
        (fault_type.value, model): ad_panel(runner, "gtsrb", model, fault_type, rates)
        for model in models
    }


def test_fig3_mislabelling_panels(benchmark, runner, rates, save_result):
    models = _models(runner)
    panels = benchmark.pedantic(
        _collect, args=(runner, rates, FaultType.MISLABELLING, models), rounds=1, iterations=1
    )

    for panel in panels.values():
        # Every series covers every rate with valid ADs.
        for series in panel.series.values():
            assert series.rates == list(rates)
            assert all(0.0 <= p.mean <= 1.0 for p in series.points)
        # Shape: baseline AD grows with the mislabelling rate.
        baseline = panel.series["baseline"]
        assert baseline.at(rates[-1]).mean >= baseline.at(rates[0]).mean - 0.05

    # Shape (Observation 1): the ensemble is the most resilient technique at
    # the highest fault rate in the majority of panels.
    wins = sum(panel.winner_at(rates[-1]) == "ensemble" for panel in panels.values())
    assert wins >= len(panels) / 2 or all(
        panel.series["ensemble"].at(rates[-1]).mean
        <= panel.series["baseline"].at(rates[-1]).mean + 0.05
        for panel in panels.values()
    )

    save_result("fig3_mislabelling", render_panels(panels, "Fig 3 (a-d): GTSRB, mislabelling"))


def test_fig3_removal_panels(benchmark, runner, rates, save_result):
    models = _models(runner)
    panels = benchmark.pedantic(
        _collect, args=(runner, rates, FaultType.REMOVAL, models), rounds=1, iterations=1
    )

    for panel in panels.values():
        # Label correction is skipped for removal (paper §IV-C).
        assert "label_correction" not in panel.series
        for series in panel.series.values():
            assert all(0.0 <= p.mean <= 1.0 for p in series.points)

    save_result("fig3_removal", render_panels(panels, "Fig 3 (e-h): GTSRB, removal"))


def test_fig3_removal_lower_ad_than_mislabelling(benchmark, runner, rates, save_result):
    """Paper §IV-C: 'all models have a lower AD compared to mislabelling'."""
    model = _models(runner)[0]
    mis, rem = benchmark.pedantic(
        lambda: (
            ad_panel(runner, "gtsrb", model, FaultType.MISLABELLING, rates, ["baseline"]),
            ad_panel(runner, "gtsrb", model, FaultType.REMOVAL, rates, ["baseline"]),
        ),
        rounds=1,
        iterations=1,
    )
    mis_mean = np.mean([p.mean for p in mis.series["baseline"].points])
    rem_mean = np.mean([p.mean for p in rem.series["baseline"].points])
    save_result(
        "fig3_fault_type_ordering",
        f"mean baseline AD ({model}, gtsrb): mislabelling={mis_mean:.1%} removal={rem_mean:.1%}",
    )
    assert rem_mean <= mis_mean + 0.05
