"""Bench (extension): co-teaching on noisy tabular data.

Not a paper table/figure: co-teaching (Han et al., NeurIPS'18) is a further
family from the noisy-label surveys the paper draws on, implemented here as
a flagged extension.  Under heavy mislabelling the small-loss exchange should
beat the unprotected baseline.
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticConfig, make_sensor_like
from repro.faults import inject, mislabelling
from repro.metrics import accuracy
from repro.mitigation import BaselineTechnique, CoTeachingTechnique, TrainingBudget


def _run():
    train, test = make_sensor_like(SyntheticConfig(train_size=240, test_size=100, seed=3))
    faulty, _ = inject(train, mislabelling(0.4), seed=4)
    budget = TrainingBudget(epochs=24, batch_size=32)
    base = BaselineTechnique().fit(faulty, "mlp", budget, np.random.default_rng(1))
    cot = CoTeachingTechnique(forget_rate=0.2).fit(faulty, "mlp", budget, np.random.default_rng(1))
    return (
        accuracy(base.predict(test.images), test.labels),
        accuracy(cot.predict(test.images), test.labels),
    )


def test_extension_co_teaching(benchmark, save_result):
    base_acc, cot_acc = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert cot_acc > base_acc  # the small-loss exchange must help

    lines = [
        "Extension: co-teaching (sensor-like tabular, MLP, mislabelling@40%)",
        f"  unprotected baseline accuracy: {base_acc:.1%}",
        f"  co-teaching accuracy:          {cot_acc:.1%}",
    ]
    save_result("extension_co_teaching", "\n".join(lines))
