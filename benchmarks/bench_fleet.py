"""Bench: fleet throughput scaling + p99 latency SLO + overload shedding.

Serves the bench ConvNet (GTSRB geometry) through three regimes and writes
``benchmarks/results/BENCH_fleet.json``:

* ``single_engine`` — the PR 5 baseline: one micro-batching
  :class:`ServingEngine`, closed-loop clients;
* ``fleet`` — ``FLEET_REPLICAS`` replicas behind the router, same schedule,
  same closed-loop concurrency: shared-memory weights mean the replicas
  cost one copy of the arrays, and process replicas sidestep the GIL;
* ``overload`` — an under-provisioned, deliberately slowed fleet driven
  far past capacity: admission control must shed the excess *immediately*
  (429-path) while every accepted request still completes.

Gates:

- **p99 SLO (always enforced)** — fleet p99 must stay within
  ``SLO_P99_MS`` and no accepted request may be lost, in both the scaling
  and the overload phases.  Latency is a correctness property of the
  admission design, not a hardware lottery: a bounded queue plus shedding
  keeps p99 flat no matter the offered load.
- **>= 3x single-engine throughput (multicore only)** — enforced when
  ``REPRO_BENCH_ENFORCE_SPEEDUP=1`` and >= 4 cores are present (the CI
  fleet-smoke job); recorded but not gated on the 1-core containers where
  four replicas time-slice one core.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from bench_common import write_bench_json
from repro.models.registry import build_model
from repro.serve import (
    BatchSettings,
    FleetSettings,
    ModelKey,
    ModelRegistry,
    ServingEngine,
    ServingFleet,
)
from tests.serve.loadgen import FleetTarget, make_schedule, run_closed_loop

GATE_MIN_SPEEDUP = 3.0
SLO_P99_MS = 500.0
FLEET_REPLICAS = 4

KEY = ModelKey(model="convnet", dataset="gtsrb")
N_REQUESTS = 512
CONCURRENCY = 32
CLIENTS = tuple(f"client-{i}" for i in range(8))


def _registry() -> ModelRegistry:
    registry = ModelRegistry()
    module = build_model("convnet", image_shape=(3, 16, 16), num_classes=43, seed=0)
    registry.register_module(KEY, module)
    return registry


def _inputs() -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.standard_normal((64, 3, 16, 16)).astype(np.float32)


def _schedule(n: int = N_REQUESTS, rate: float = 10_000.0, seed: int = 0):
    return make_schedule(
        n, rate=rate, clients=CLIENTS, samples=64, seed=seed
    )


class _EngineAsFleet:
    """Adapter: drive a bare engine through the fleet-shaped load target."""

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine

    def submit(self, key, sample, client=None, priority=0):
        return self.engine.submit(key, sample)


def _bench_single_engine(inputs: np.ndarray) -> dict:
    settings = BatchSettings(max_batch_size=32, max_latency_ms=2.0, workers=1)
    with ServingEngine(_registry(), settings) as engine:
        engine.predict(KEY, inputs[:32])  # warm-up
        target = FleetTarget(_EngineAsFleet(engine), KEY, inputs, timeout_s=60.0)
        report = run_closed_loop(target, _schedule(), concurrency=CONCURRENCY)
    assert report.lost == 0 and report.errors == 0, report.summary()
    return report.summary()


def _bench_fleet(inputs: np.ndarray) -> dict:
    settings = FleetSettings(
        replicas=FLEET_REPLICAS,
        backend="auto",
        max_queue=8192,
        chunk=16,
        replica_cap=64,
        batch=BatchSettings(max_batch_size=32, max_latency_ms=2.0, workers=1),
    )
    with ServingFleet(_registry(), settings) as fleet:
        fleet.predict(KEY, inputs[:16])  # warm-up (all replicas reachable)
        target = FleetTarget(fleet, KEY, inputs, timeout_s=60.0)
        report = run_closed_loop(target, _schedule(seed=1), concurrency=CONCURRENCY)
        described = fleet.describe()
    assert report.lost == 0 and report.errors == 0, report.summary()
    summary = report.summary()
    summary["replicas"] = FLEET_REPLICAS
    summary["backend"] = described["backend"]
    summary["evictions"] = described["evictions"]
    return summary


def _bench_overload(inputs: np.ndarray) -> dict:
    """Drive a slowed 1-replica fleet far past capacity; shedding must hold."""
    # Bounded admission is what makes the p99 SLO hold under any offered
    # load: accepted backlog <= max_queue + replica_cap = 24 requests, and
    # at ~80 req/s capacity that is a ~300 ms worst case — inside the SLO.
    settings = FleetSettings(
        replicas=1,
        backend="thread",
        max_queue=16,
        chunk=4,
        replica_cap=8,
        batch=BatchSettings(max_batch_size=4, max_latency_ms=1.0, workers=1),
    )
    with ServingFleet(_registry(), settings) as fleet:
        fleet.predict(KEY, inputs[0])  # warm-up
        fleet.slow_replica(0, delay_s=0.05)  # ~80 req/s capacity
        target = FleetTarget(fleet, KEY, inputs, timeout_s=60.0)
        schedule = _schedule(n=256, rate=20_000.0, seed=2)
        report = run_closed_loop(target, schedule, concurrency=64)
    summary = report.summary()
    assert report.shed > 0, f"overload never shed: {summary}"
    assert report.lost == 0 and report.errors == 0, summary
    assert report.ok == report.accepted, summary
    return summary


def _enforce_speedup() -> bool:
    return os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP") == "1" and (
        os.cpu_count() or 1
    ) >= 4


def test_fleet_perf():
    inputs = _inputs()
    single = _bench_single_engine(inputs)
    fleet = _bench_fleet(inputs)
    overload = _bench_overload(inputs)
    speedup = (
        fleet["throughput_rps"] / single["throughput_rps"]
        if single["throughput_rps"] else 0.0
    )
    payload = {
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "slo_p99_ms": SLO_P99_MS,
        "speedup_enforced": _enforce_speedup(),
        "model": KEY.id,
        "requests": N_REQUESTS,
        "concurrency": CONCURRENCY,
        "replicas": FLEET_REPLICAS,
        "single_engine": single,
        "fleet": fleet,
        "overload": overload,
        "speedup": round(speedup, 3),
    }
    out = write_bench_json("BENCH_fleet.json", "fleet", payload)
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")

    # The SLO gate is unconditional: bounded admission keeps p99 flat even
    # on starved hardware, and overload answers (shed or served) promptly.
    assert fleet["p99_ms"] <= SLO_P99_MS, payload
    assert overload["p99_ms"] <= SLO_P99_MS, payload
    assert fleet["lost"] == 0 and overload["lost"] == 0, payload
    if _enforce_speedup():
        assert speedup >= GATE_MIN_SPEEDUP, payload
