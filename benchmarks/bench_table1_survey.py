"""Bench: regenerate paper Table I (survey selection of TDFM techniques).

Paper §III-A: 15 candidate techniques (top three per approach) scored against
five criteria; the all-criteria rows are the representatives.
"""

from __future__ import annotations

from repro.survey import select_representatives, render_table1


def test_table1_selection(benchmark, save_result):
    results = benchmark.pedantic(select_representatives, rounds=5, iterations=1)

    # The paper's asterisked representatives.
    assert results["Label Smoothing"].representative.technique == "Label Relaxation"
    assert results["Label Correction"].representative.technique == "Meta Label Correction"
    assert results["Robust Loss"].representative.technique == "Active-Passive Losses"
    # KD/Ensemble have no all-criteria candidate and are re-implemented.
    assert results["Knowledge Distillation"].reimplemented
    assert results["Ensemble"].reimplemented

    lines = [render_table1(), "", "Selected representatives:"]
    lines += [f"  {result}" for result in results.values()]
    save_result("table1_survey", "\n".join(lines))
