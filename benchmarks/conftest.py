"""Shared fixtures for the benchmark suite.

All benches share one session-scoped :class:`ExperimentRunner`, so golden
models, datasets, and (dataset-level) ensemble fits are trained once and
reused across tables/figures — mirroring how the paper trains one golden
model per (architecture, dataset) and one ensemble per dataset.

Scale is controlled by ``REPRO_SCALE`` (default ``smoke``); see DESIGN.md §4.
Each bench prints its paper-shaped table/series and also writes it to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentRunner, resolve_scale

RESULTS_DIR = Path(__file__).parent / "results"


CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One runner for the whole bench session.

    Uses a persistent disk cache under ``benchmarks/.cache`` so repeated
    bench runs (same scale/seed) reuse trained cells instead of retraining;
    delete the directory to force a cold run.
    """
    return ExperimentRunner(resolve_scale(), cache_dir=str(CACHE_DIR))


@pytest.fixture(scope="session")
def rates(runner) -> tuple[float, ...]:
    """Fault rates: the paper's 10/30/50 % grid, trimmed at smoke scale."""
    if runner.scale.name == "smoke":
        return (0.1, 0.5)
    return (0.1, 0.3, 0.5)


@pytest.fixture()
def save_result(runner):
    """Write a rendered result under benchmarks/results/ and echo it."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.{runner.scale.name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
