"""Bench: kernel-level performance of the ``repro.nn`` hot path.

Times the vectorized (``fast``) kernels against their baselines and writes
``benchmarks/results/BENCH_kernel_perf.json``:

* ``im2col`` — window-view gather vs the seed ``im2col_reference`` loop
  (gated: must be >= 1.2x on every conv shape);
* ``col2im`` — new-layout fold vs ``col2im_reference`` (report-only: the
  scatter-accumulate is a strided loop in both, only the layout differs);
* ``conv2d`` — forward+backward vs the ``legacy`` seed kernels (gated on the
  mean speedup across shapes);
* ``fused_loss`` — fused softmax-CE vs the composed log-softmax expression
  (gated);
* ``epoch`` — full VGG11 / ResNet18 training epochs, legacy vs fast, using
  ``TrainHistory.throughput_examples_per_s`` (best epoch of several, which
  is the min-time estimator and robust to scheduler noise).

The CI smoke gate is 1.2x so container timing noise cannot flake the job;
the recorded numbers on an idle machine are ~1.5x end-to-end for VGG11 and
higher for the individual kernels.
"""

from __future__ import annotations

import json
import time

import numpy as np

from bench_common import write_bench_json
from repro.models import resnet18, vgg11
from repro.nn import SGD, CrossEntropy, Tensor, Trainer, use_kernel_mode
from repro.nn.functional import (
    col2im,
    col2im_reference,
    conv2d,
    im2col,
    im2col_reference,
    log_softmax,
    softmax_cross_entropy,
)

GATE_MIN_SPEEDUP = 1.2

# (label, (n, c, h, w), (kh, kw), stride, padding) — VGG/ResNet conv geometries.
CONV_SHAPES = [
    ("conv3x3_early", (32, 8, 32, 32), (3, 3), 1, 1),
    ("conv3x3_mid", (32, 32, 16, 16), (3, 3), 1, 1),
    ("conv3x3_late", (32, 64, 8, 8), (3, 3), 1, 1),
]


def _best_ms(fn, reps: int = 10) -> float:
    fn()  # warm-up: page in buffers, trigger any lazy imports
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _bench_im2col() -> dict:
    rng = np.random.default_rng(0)
    section = {}
    for label, x_shape, (kh, kw), stride, padding in CONV_SHAPES:
        x = rng.normal(size=x_shape).astype(np.float32)
        with use_kernel_mode("fast"):
            fast_ms = _best_ms(lambda: im2col(x, kh, kw, stride, padding))
        ref_ms = _best_ms(lambda: im2col_reference(x, kh, kw, stride, padding))
        section[label] = {
            "fast_ms": round(fast_ms, 4),
            "reference_ms": round(ref_ms, 4),
            "speedup": round(ref_ms / fast_ms, 3),
        }
    return section


def _bench_col2im() -> dict:
    rng = np.random.default_rng(1)
    section = {}
    for label, (n, c, h, w), (kh, kw), stride, padding in CONV_SHAPES:
        out_h = (h + 2 * padding - kh) // stride + 1
        out_w = (w + 2 * padding - kw) // stride + 1
        cols_new = rng.normal(size=(n, c * kh * kw, out_h * out_w)).astype(np.float32)
        cols_old = np.ascontiguousarray(
            cols_new.transpose(0, 2, 1).reshape(n * out_h * out_w, c * kh * kw)
        )
        new_ms = _best_ms(lambda: col2im(cols_new, (n, c, h, w), kh, kw, stride, padding))
        ref_ms = _best_ms(
            lambda: col2im_reference(cols_old, (n, c, h, w), kh, kw, stride, padding)
        )
        section[label] = {
            "fast_ms": round(new_ms, 4),
            "reference_ms": round(ref_ms, 4),
            "speedup": round(ref_ms / new_ms, 3),
        }
    return section


def _bench_conv2d() -> dict:
    rng = np.random.default_rng(2)
    section = {}
    for label, x_shape, (kh, kw), stride, padding in CONV_SHAPES:
        c_out = 2 * x_shape[1]
        x = rng.normal(size=x_shape).astype(np.float32)
        w = rng.normal(size=(c_out, x_shape[1], kh, kw)).astype(np.float32)
        b = rng.normal(size=(c_out,)).astype(np.float32)

        def fwd_bwd():
            xt = Tensor(x, requires_grad=True)
            wt = Tensor(w, requires_grad=True)
            bt = Tensor(b, requires_grad=True)
            out = conv2d(xt, wt, bt, stride=stride, padding=padding)
            out.backward(np.ones_like(out.data))

        with use_kernel_mode("fast"):
            fast_ms = _best_ms(fwd_bwd)
        with use_kernel_mode("legacy"):
            legacy_ms = _best_ms(fwd_bwd)
        section[label] = {
            "fast_ms": round(fast_ms, 4),
            "legacy_ms": round(legacy_ms, 4),
            "speedup": round(legacy_ms / fast_ms, 3),
        }
    return section


def _bench_fused_loss() -> dict:
    rng = np.random.default_rng(3)
    logits_data = rng.normal(size=(256, 43)).astype(np.float32)  # GTSRB-sized batch
    targets = np.eye(43, dtype=np.float32)[rng.integers(0, 43, 256)]

    def fused():
        logits = Tensor(logits_data, requires_grad=True)
        softmax_cross_entropy(logits, targets).backward()

    def composed():
        logits = Tensor(logits_data, requires_grad=True)
        loss = -((log_softmax(logits, axis=1) * Tensor(targets)).sum(axis=1).mean())
        loss.backward()

    with use_kernel_mode("fast"):
        fused_ms = _best_ms(fused, reps=20)
    composed_ms = _best_ms(composed, reps=20)
    return {
        "fused_ms": round(fused_ms, 4),
        "composed_ms": round(composed_ms, 4),
        "speedup": round(composed_ms / fused_ms, 3),
    }


def _epoch_throughput(build, mode: str, n: int = 128, epochs: int = 5) -> float:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, 3, 32, 32)).astype(np.float32)
    y = np.eye(10, dtype=np.float32)[rng.integers(0, 10, n)]
    with use_kernel_mode(mode):
        model = build(np.random.default_rng(0))
        trainer = Trainer(
            model,
            CrossEntropy(),
            SGD(model.parameters(), lr=0.01),
            epochs=epochs,
            batch_size=32,
            rng=np.random.default_rng(0),
        )
        history = trainer.fit(x, y)
    return max(epoch.throughput_examples_per_s for epoch in history.epochs)


def _bench_epochs() -> dict:
    configs = {
        "vgg11_w4": lambda rng: vgg11((3, 32, 32), 10, width=4, rng=rng),
        "resnet18_w8": lambda rng: resnet18((3, 32, 32), 10, width=8, rng=rng),
    }
    section = {}
    for label, build in configs.items():
        legacy = _epoch_throughput(build, "legacy")
        fast = _epoch_throughput(build, "fast")
        section[label] = {
            "legacy_examples_per_s": round(legacy, 1),
            "fast_examples_per_s": round(fast, 1),
            "speedup": round(fast / legacy, 3),
        }
    return section


def test_kernel_perf():
    payload = {
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "im2col": _bench_im2col(),
        "col2im": _bench_col2im(),
        "conv2d": _bench_conv2d(),
        "fused_loss": _bench_fused_loss(),
        "epoch": _bench_epochs(),
    }
    out = write_bench_json("BENCH_kernel_perf.json", "kernel_perf", payload)
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")

    # Gates.  im2col: every conv gather must beat the seed loop.
    for label, row in payload["im2col"].items():
        assert row["speedup"] >= GATE_MIN_SPEEDUP, f"im2col {label}: {row}"
    # conv2d: gate the mean so one noisy shape cannot flake the job.
    conv_speedups = [row["speedup"] for row in payload["conv2d"].values()]
    assert float(np.mean(conv_speedups)) >= GATE_MIN_SPEEDUP, payload["conv2d"]
    assert payload["fused_loss"]["speedup"] >= GATE_MIN_SPEEDUP, payload["fused_loss"]
    # End-to-end: the acceptance target is ~1.5x on VGG11 (recorded in the
    # JSON); the CI gate stays at 1.2x to absorb shared-runner noise.
    assert payload["epoch"]["vgg11_w4"]["speedup"] >= GATE_MIN_SPEEDUP, payload["epoch"]
