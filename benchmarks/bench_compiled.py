"""Bench: compiled-tape training vs the PR 4 fast-eager hot path.

Measures the record → plan → execute pipeline (``repro.nn.compile``) end to
end and writes ``benchmarks/results/BENCH_compiled_tape.json``:

* ``step_replay`` — one full training step (forward, backward, optimizer) on
  a recorded VGG11 tape, eager re-trace vs ``CompiledStep`` replay, min-time
  over interleaved blocks (report-only);
* ``epoch`` — full VGG11 training runs through ``Trainer.fit`` in ``fast``
  vs ``compiled`` kernel mode, comparing best-epoch
  ``TrainHistory.throughput_examples_per_s`` (gated: >= 1.25x).

The replay wins come from skipping per-step graph construction and from the
armed zero-allocation kernels (persistent pad/column/gradient buffers, cached
strided views), so the advantage is largest in the Python-overhead-bound
regime — small batches and narrow models, which is exactly where the paper's
per-configuration study spends most of its grid.  Both modes are measured
interleaved with a best-of-runs (min-time) estimator so shared-runner noise
cannot flake the gate; compiled and eager results are bitwise-identical
(locked by tests/nn/test_compiled_tape.py), so this trades no accuracy.
"""

from __future__ import annotations

import json
import time

import numpy as np

from bench_common import write_bench_json
from repro.models import vgg11
from repro.nn import SGD, CrossEntropy, Tensor, Trainer, use_kernel_mode
from repro.nn.compile import compile_tape
from repro.nn.tape import Tape, tape_scope

GATE_MIN_SPEEDUP = 1.25
INTERLEAVED_RUNS = 3

# The gated geometry: a narrow VGG11 at study-sized inputs with a small
# batch — the overhead-bound regime the compiled step is built for.
WIDTH = 2
BATCH = 4
N_EXAMPLES = 64
EPOCHS = 6


def _setup(width: int, batch: int):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, 3, 32, 32)).astype(np.float32)
    y = np.eye(10, dtype=np.float32)[rng.integers(0, 10, batch)]
    model = vgg11((3, 32, 32), 10, width=width, rng=np.random.default_rng(0))
    model.train()
    optimizer = SGD(model.parameters(), lr=0.01)
    loss_fn = CrossEntropy()
    return model, optimizer, loss_fn, x, y


def _bench_step_replay(reps: int = 20, blocks: int = 4) -> dict:
    """Min-time per training step: eager re-trace vs compiled replay."""
    with use_kernel_mode("compiled"):
        model, optimizer, loss_fn, x, y = _setup(WIDTH, BATCH)

        def eager_step():
            logits = model(Tensor(x))
            loss = loss_fn(logits, y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            return loss, logits

        tape = Tape()
        with tape_scope(tape):
            loss, logits = eager_step()
        step = compile_tape(tape, loss, logits, (x, y))

        def replay_step():
            step.forward((x, y))
            optimizer.zero_grad()
            step.backward()
            optimizer.step()

        for _ in range(5):  # warm-up: fault in the persistent buffers
            eager_step()
            replay_step()
        best_eager = best_replay = float("inf")
        for _ in range(blocks):
            start = time.perf_counter()
            for _ in range(reps):
                eager_step()
            best_eager = min(best_eager, (time.perf_counter() - start) / reps)
            start = time.perf_counter()
            for _ in range(reps):
                replay_step()
            best_replay = min(best_replay, (time.perf_counter() - start) / reps)
    return {
        "eager_step_ms": round(best_eager * 1e3, 4),
        "replay_step_ms": round(best_replay * 1e3, 4),
        "speedup": round(best_eager / best_replay, 3),
    }


def _epoch_throughput(mode: str) -> float:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(N_EXAMPLES, 3, 32, 32)).astype(np.float32)
    y = np.eye(10, dtype=np.float32)[rng.integers(0, 10, N_EXAMPLES)]
    with use_kernel_mode(mode):
        model = vgg11((3, 32, 32), 10, width=WIDTH, rng=np.random.default_rng(0))
        trainer = Trainer(
            model,
            CrossEntropy(),
            SGD(model.parameters(), lr=0.01),
            epochs=EPOCHS,
            batch_size=BATCH,
            rng=np.random.default_rng(0),
        )
        history = trainer.fit(x, y)
    return max(epoch.throughput_examples_per_s for epoch in history.epochs)


def _bench_epochs() -> dict:
    # Interleave the modes and keep each one's best run: min-time estimation
    # at the run level, so a background burst cannot sink one mode only.
    fast = compiled = 0.0
    for _ in range(INTERLEAVED_RUNS):
        fast = max(fast, _epoch_throughput("fast"))
        compiled = max(compiled, _epoch_throughput("compiled"))
    return {
        "model": f"vgg11_w{WIDTH}",
        "batch_size": BATCH,
        "n_examples": N_EXAMPLES,
        "epochs": EPOCHS,
        "fast_examples_per_s": round(fast, 1),
        "compiled_examples_per_s": round(compiled, 1),
        "speedup": round(compiled / fast, 3),
    }


def test_compiled_tape_perf():
    payload = {
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "step_replay": _bench_step_replay(),
        "epoch": _bench_epochs(),
    }
    out = write_bench_json("BENCH_compiled_tape.json", "compiled_tape", payload)
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")

    # The acceptance gate: compiled training must beat fast-eager by >= 1.25x
    # on VGG11 best-epoch throughput.
    assert payload["epoch"]["speedup"] >= GATE_MIN_SPEEDUP, payload["epoch"]
