"""Bench: regenerate paper Fig. 4 (AD across the three datasets).

Paper §IV-D: panels (a, c, e) report ResNet50 under mislabelling and panels
(b, d, f) report MobileNet under repetition, one pair per dataset.  Shape
findings: ensembles are resilient across most configurations (Observation 3)
and models are quite resilient to repetition faults across all datasets.
"""

from __future__ import annotations

from repro.experiments import ad_panel, render_panels
from repro.faults import FaultType

DATASETS = ("cifar10", "gtsrb", "pneumonia")


def _collect(runner, rates):
    panels = {}
    for dataset in DATASETS:
        panels[(dataset, "resnet50", "mislabelling")] = ad_panel(
            runner, dataset, "resnet50", FaultType.MISLABELLING, rates
        )
        panels[(dataset, "mobilenet", "repetition")] = ad_panel(
            runner, dataset, "mobilenet", FaultType.REPETITION, rates
        )
    return panels


def test_fig4_cross_dataset_panels(benchmark, runner, rates, save_result):
    panels = benchmark.pedantic(_collect, args=(runner, rates), rounds=1, iterations=1)

    for key, panel in panels.items():
        for series in panel.series.values():
            assert all(0.0 <= p.mean <= 1.0 for p in series.points)
        if key[2] == "repetition":
            # Label correction only runs under mislabelling (paper §IV-C).
            assert "label_correction" not in panel.series

    # Shape (paper §IV-D): repetition faults are mild — the baseline's AD
    # under repetition stays below its AD under heavy mislabelling.
    for dataset in DATASETS:
        rep = panels[(dataset, "mobilenet", "repetition")].series["baseline"]
        rep_worst = max(p.mean for p in rep.points)
        assert rep_worst <= 0.8, f"repetition AD unexpectedly catastrophic on {dataset}"

    save_result("fig4_datasets", render_panels(panels, "Fig 4: AD across datasets"))
