"""Bench: micro-batched serving throughput vs single-request inference.

Serves a ConvNet (GTSRB geometry) through the :mod:`repro.serve` engine in
two regimes and writes ``benchmarks/results/BENCH_serving.json``:

* ``single_request`` — a sequential client, one sample per request, engine
  capped at ``max_batch_size=1``: every forward pass carries the full
  per-call overhead (python dispatch, im2col setup, workspace lookups);
* ``micro_batched`` — concurrent clients streaming samples into the same
  engine with ``max_batch_size=32``: the coalescer amortises that overhead
  across the batch while row-stable kernels keep every response
  bitwise-identical to the single-request answers.

Both regimes report throughput and per-request p50/p95/p99 latency.  The
percentiles come from the same :class:`repro.telemetry.Histogram` +
:func:`latency_summary_ms` pair that backs the engine's ``/stats``
endpoint, so the bench numbers and the live endpoint agree by
construction.  The gate requires micro-batching to reach >= 3x the
single-request throughput (raw batch-32 forwards measure ~5x; the margin
absorbs engine and scheduler overhead on shared CI runners).
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from bench_common import write_bench_json
from repro.models.registry import build_model
from repro.serve import BatchSettings, ModelKey, ModelRegistry, ServingEngine
from repro.telemetry import Histogram, latency_summary_ms

GATE_MIN_SPEEDUP = 3.0

KEY = ModelKey(model="convnet", dataset="gtsrb")
N_SAMPLES = 256
CLIENTS = 8


def _latency_summary(latencies_ms: "list[float]") -> dict:
    """p50/p95/p99 via the engine's own histogram machinery (``/stats``)."""
    hist = Histogram("bench_request_latency_seconds")
    for ms in latencies_ms:
        hist.observe(ms / 1e3)
    return latency_summary_ms(hist)


def _make_engine(settings: BatchSettings) -> ServingEngine:
    registry = ModelRegistry()
    module = build_model("convnet", image_shape=(3, 16, 16), num_classes=43, seed=0)
    registry.register_module(KEY, module)
    return ServingEngine(registry, settings)


def _inputs() -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.standard_normal((N_SAMPLES, 3, 16, 16)).astype(np.float32)


def _bench_single_request(x: np.ndarray) -> dict:
    """Sequential client, one sample per request, no coalescing possible."""
    settings = BatchSettings(max_batch_size=1, max_latency_ms=0.0, workers=1)
    latencies: list[float] = []
    with _make_engine(settings) as engine:
        engine.predict(KEY, x[0])  # warm-up
        started = time.perf_counter()
        for sample in x:
            t0 = time.perf_counter()
            engine.predict(KEY, sample)
            latencies.append((time.perf_counter() - t0) * 1e3)
        elapsed = time.perf_counter() - started
        stats = engine.stats.snapshot()
    return {
        "throughput_per_s": round(len(x) / elapsed, 1),
        **_latency_summary(latencies),
        "mean_batch": stats["mean_batch"],
    }


def _bench_micro_batched(x: np.ndarray) -> dict:
    """Concurrent clients streaming samples; the engine coalesces them."""
    settings = BatchSettings(max_batch_size=32, max_latency_ms=5.0, workers=1)
    per_client = len(x) // CLIENTS
    latencies: list[float] = []
    lock = threading.Lock()
    with _make_engine(settings) as engine:
        engine.predict(KEY, x[:32])  # warm-up

        def client(shard: np.ndarray) -> None:
            # Stream: submit everything, then collect — the open-loop load
            # pattern that lets the coalescer actually fill batches.
            submitted = [
                (time.perf_counter(), engine.submit(KEY, sample))
                for sample in shard
            ]
            times = []
            for t0, future in submitted:
                future.result(timeout=30)
                times.append((time.perf_counter() - t0) * 1e3)
            with lock:
                latencies.extend(times)

        threads = [
            threading.Thread(target=client, args=(x[i * per_client:(i + 1) * per_client],))
            for i in range(CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stats = engine.stats.snapshot()
    return {
        "throughput_per_s": round(CLIENTS * per_client / elapsed, 1),
        **_latency_summary(latencies),
        "mean_batch": stats["mean_batch"],
        "max_batch": stats["max_batch"],
        "engine_latency_ms": stats["latency_ms"],
        "clients": CLIENTS,
    }


def test_serving_perf():
    x = _inputs()
    single = _bench_single_request(x)
    batched = _bench_micro_batched(x)
    speedup = batched["throughput_per_s"] / single["throughput_per_s"]
    payload = {
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "model": KEY.id,
        "samples": N_SAMPLES,
        "single_request": single,
        "micro_batched": batched,
        "speedup": round(speedup, 3),
    }
    out = write_bench_json("BENCH_serving.json", "serving", payload)
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")

    assert speedup >= GATE_MIN_SPEEDUP, payload
