"""Bench (extension): confident-learning noise estimation.

Not a paper table/figure: the paper controls the injected fault rate; this
extension solves the practitioner's inverse problem — estimating a dataset's
mislabelling rate — with the confident-learning approach of the paper's
reference [12] (Northcutt et al.).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import estimate_noise
from repro.data import load_dataset
from repro.faults import inject, mislabelling
from repro.mitigation import TrainingBudget


def _audit(true_rate: float):
    train, _ = load_dataset("cifar10", train_size=240, test_size=20, seed=0)
    faulty, report = inject(train, mislabelling(true_rate), seed=11)
    estimate = estimate_noise(
        faulty,
        model_name="convnet",
        budget=TrainingBudget(epochs=12),
        rng=np.random.default_rng(1),
        folds=3,
    )
    return estimate, report


def test_extension_noise_estimation(benchmark, save_result):
    true_rate = 0.3
    estimate, report = benchmark.pedantic(_audit, args=(true_rate,), rounds=1, iterations=1)

    # The estimate must be in the right ballpark and the top suspects real.
    assert 0.10 <= estimate.estimated_noise_rate <= 0.55
    assert estimate.precision_against(report.mislabelled_indices, top=20) > 0.5
    assert estimate.recall_against(report.mislabelled_indices) > 0.4

    lines = [
        "Extension: confident-learning noise audit (cifar10-like, convnet, 3-fold CV)",
        f"  injected rate:          {true_rate:.0%}",
        f"  estimated rate:         {estimate.estimated_noise_rate:.1%}",
        f"  suspects flagged:       {len(estimate.suspect_indices)}",
        f"  precision (top 20):     {estimate.precision_against(report.mislabelled_indices, top=20):.1%}",
        f"  recall of injected:     {estimate.recall_against(report.mislabelled_indices):.1%}",
    ]
    save_result("extension_noise_estimation", "\n".join(lines))
