"""Shared envelope for ``benchmarks/results/BENCH_*.json`` artifacts.

Every benchmark that persists a machine-readable result wraps its payload
with :func:`bench_envelope` (schema version, UTC timestamp, git commit,
cpu count) so CI artifacts from different runs and machines can be
compared without guessing at provenance, and writes it through
:func:`write_bench_json` so the layout stays uniform:

```json
{
  "schema": 1,
  "benchmark": "serving",
  "generated_utc": "2026-08-08T12:34:56Z",
  "git_commit": "a2453ff...",
  "cpu_count": 8,
  ...payload keys...
}
```

Payload keys live at the top level next to the envelope (not nested) so
existing consumers that read e.g. ``payload["speedup"]`` keep working.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCHEMA_VERSION = 1

_ENVELOPE_KEYS = ("schema", "benchmark", "generated_utc", "git_commit", "cpu_count")


def _git_commit() -> str:
    """Current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_envelope(benchmark: str) -> dict:
    """Provenance header shared by every ``BENCH_*.json`` artifact."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "benchmark": benchmark,
        "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_commit": _git_commit(),
        "cpu_count": os.cpu_count() or 1,
    }


def write_bench_json(filename: str, benchmark: str, payload: dict) -> Path:
    """Write ``benchmarks/results/<filename>`` with the shared envelope.

    The envelope keys come first, then the payload keys in their given
    order; a payload may not shadow an envelope key.
    """
    clash = sorted(set(payload) & set(_ENVELOPE_KEYS))
    if clash:
        raise ValueError(f"payload keys shadow the bench envelope: {clash}")
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / filename
    document = {**bench_envelope(benchmark), **payload}
    out.write_text(json.dumps(document, indent=2) + "\n")
    return out
