"""Bench: plan/executor scaling — sweep wall-clock at jobs ∈ {1, 2, 4}.

The study grid is embarrassingly parallel (every cell trains its own models
from unit-derived seeds), so sweep wall-clock should drop as ``--jobs``
rises on a multi-core host.  This bench times one tiny grid under the
:class:`~repro.experiments.executors.SerialExecutor` and under
:class:`~repro.experiments.executors.ParallelExecutor` at 2 and 4 workers,
checks the three runs produce identical result payloads, and writes a
``BENCH_study_scaling.json`` trajectory point under ``benchmarks/results/``.

Speedup is hardware-dependent (a single-core container shows ~1×; the
acceptance target is ≥1.5× at 4 jobs on a multi-core host), so the bench
asserts correctness, not speedup, and records both for the trajectory.
"""

from __future__ import annotations

import json
import os
import time

from bench_common import write_bench_json
from repro.experiments import (
    ExperimentRunner,
    ParallelExecutor,
    ScaleSettings,
    SerialExecutor,
    plan_study,
    results_equivalent,
    run_study_plan,
)
from repro.faults import FaultType


#: Small enough for a bench, big enough (8 cells, 2 datasets) to schedule.
TINY = ScaleSettings(
    name="bench-tiny",
    dataset_sizes={"pneumonia": (60, 40), "gtsrb": (86, 43)},
    epochs=4,
    batch_size=16,
    repeats=1,
    seed=7,
)

GRID = dict(
    models=("convnet",),
    datasets=("pneumonia", "gtsrb"),
    fault_types=(FaultType.MISLABELLING, FaultType.REMOVAL),
    rates=(0.1, 0.3),
    techniques=["baseline"],
)


def _run_at(jobs: int) -> tuple[float, list]:
    """Cold-run the tiny grid at ``jobs`` workers; returns (seconds, results)."""
    plan = plan_study(scale=TINY, **GRID)
    if jobs == 1:
        executor = SerialExecutor(runner=ExperimentRunner(TINY))
    else:
        executor = ParallelExecutor(jobs=jobs)
    start = time.perf_counter()
    report = run_study_plan(plan, executor=executor)
    elapsed = time.perf_counter() - start
    assert report.ok and len(report.results) == len(plan)
    return elapsed, report.results


def test_study_scaling_trajectory():
    # Disk caching would let later job counts replay earlier training and
    # fake the scaling curve; force cold runs.
    os.environ.pop("REPRO_CACHE_DIR", None)

    points = []
    baseline_results = None
    for jobs in (1, 2, 4):
        seconds, results = _run_at(jobs)
        if baseline_results is None:
            baseline_results = results
        else:
            # Scheduling must never change the science.
            assert results_equivalent(baseline_results, results)
        points.append({"jobs": jobs, "seconds": round(seconds, 3)})

    serial_s = points[0]["seconds"]
    for point in points:
        point["speedup"] = round(serial_s / point["seconds"], 3) if point["seconds"] else None

    payload = {
        "scale": TINY.name,
        "grid_cells": len(plan_study(scale=TINY, **GRID)),
        "points": points,
        "speedup_at_4_jobs": points[-1]["speedup"],
    }
    out = write_bench_json("BENCH_study_scaling.json", "study_scaling", payload)
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")


if __name__ == "__main__":
    test_study_scaling_trajectory()
