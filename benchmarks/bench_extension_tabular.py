"""Bench (extension): TDFM techniques on tabular data (paper §V future work).

Not a paper table/figure: the paper restricts itself to image classification
and names other data types as future work.  This bench runs the mislabelling
experiment on the synthetic "sensor" tabular dataset with an MLP and checks
the study's machinery carries over.
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticConfig, make_sensor_like
from repro.faults import inject, mislabelling
from repro.metrics import compare_models
from repro.mitigation import BaselineTechnique, LabelSmoothingTechnique, TrainingBudget


def _run_tabular():
    train, test = make_sensor_like(SyntheticConfig(train_size=300, test_size=100, seed=0))
    budget = TrainingBudget(epochs=20)
    golden = BaselineTechnique().fit(train, "mlp", budget, np.random.default_rng(1))
    golden_pred = golden.predict(test.images)

    faulty_train, _ = inject(train, mislabelling(0.3), seed=9)
    baseline = BaselineTechnique().fit(faulty_train, "mlp", budget, np.random.default_rng(1))
    smoothed = LabelSmoothingTechnique(alpha=0.2).fit(
        faulty_train, "mlp", budget, np.random.default_rng(1)
    )
    return (
        float((golden_pred == test.labels).mean()),
        compare_models(golden_pred, baseline.predict(test.images), test.labels),
        compare_models(golden_pred, smoothed.predict(test.images), test.labels),
    )


def test_extension_tabular_mislabelling(benchmark, save_result):
    golden_acc, baseline, smoothed = benchmark.pedantic(_run_tabular, rounds=1, iterations=1)

    # The MLP must learn the clean tabular task.
    assert golden_acc > 0.6
    # Faults must register as a valid AD for both variants.
    assert 0.0 <= baseline.accuracy_delta <= 1.0
    assert 0.0 <= smoothed.accuracy_delta <= 1.0

    lines = [
        "Extension: tabular 'sensor' dataset + MLP, mislabelling@30%",
        f"  golden accuracy:   {golden_acc:.1%}",
        f"  baseline:          accuracy={baseline.faulty_accuracy:.1%} AD={baseline.accuracy_delta:.1%}",
        f"  label smoothing:   accuracy={smoothed.faulty_accuracy:.1%} AD={smoothed.accuracy_delta:.1%}",
    ]
    save_result("extension_tabular", "\n".join(lines))
