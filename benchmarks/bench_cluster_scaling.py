"""Bench: cluster-executor scaling + in-cell allreduce step throughput.

Two measurements feed ``BENCH_cluster_scaling.json``:

1. **Sweep scaling** — a 16-cell grid run through :class:`ClusterExecutor`
   with 1 and 2 local workers, plus a ``ParallelExecutor --jobs 1``
   reference.  The single-worker cluster run should be within a few
   percent of the pool baseline (the coordinator adds only frame
   (de)serialisation), and two workers should approach 2× on a
   multi-core host.
2. **Allreduce throughput** — VGG11 optimisation steps/sec for a plain
   single-process fit vs a ``ddp = 2`` :class:`DataParallelGroup`
   (process backend), measuring what in-cell data parallelism buys one
   large-net training loop.

Speedups are hardware-dependent (a single-core container shows ~1×), so
correctness — identical result payloads across every executor — is
asserted unconditionally, while the speedup gates (≥1.8× at 2 workers,
1-worker overhead ≤5%) only fail the bench when
``REPRO_BENCH_ENFORCE_SPEEDUP=1`` (set by the CI cluster job on
multi-core runners).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import numpy as np

from bench_common import write_bench_json
from repro.experiments import (
    ClusterExecutor,
    ParallelExecutor,
    ScaleSettings,
    plan_study,
    results_equivalent,
    run_study_plan,
    run_worker,
)
from repro.faults import FaultType
from repro.models import build_model
from repro.nn import SGD, CrossEntropy, DataParallelGroup, Tensor

#: Same per-cell cost as the study-scaling bench, doubled to 16 cells so
#: two workers have enough independent units to overlap.
TINY = ScaleSettings(
    name="bench-tiny",
    dataset_sizes={"pneumonia": (60, 40), "gtsrb": (86, 43)},
    epochs=4,
    batch_size=16,
    repeats=1,
    seed=7,
)

GRID = dict(
    models=("convnet",),
    datasets=("pneumonia", "gtsrb"),
    fault_types=(FaultType.MISLABELLING, FaultType.REMOVAL),
    rates=(0.1, 0.2, 0.3, 0.4),
    techniques=["baseline"],
)  # 2 datasets × 2 faults × 4 rates = 16 cells


def _enforce_speedups() -> bool:
    return os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP") == "1" and (
        os.cpu_count() or 1
    ) >= 2


def _run_cluster(workers: int) -> tuple[float, list]:
    plan = plan_study(scale=TINY, **GRID)
    executor = ClusterExecutor(lease_timeout=300.0, poll_interval=0.05)
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=run_worker, args=executor.address, daemon=True)
        for _ in range(workers)
    ]
    start = time.perf_counter()
    for proc in procs:
        proc.start()
    report = run_study_plan(plan, executor=executor)
    elapsed = time.perf_counter() - start
    for proc in procs:
        proc.join(timeout=30)
    assert report.ok and len(report.results) == len(plan)
    return elapsed, report.results


def _run_pool_baseline() -> tuple[float, list]:
    plan = plan_study(scale=TINY, **GRID)
    start = time.perf_counter()
    report = run_study_plan(plan, executor=ParallelExecutor(jobs=1))
    elapsed = time.perf_counter() - start
    assert report.ok and len(report.results) == len(plan)
    return elapsed, report.results


def _vgg11_steps_per_s(world: int, steps: int = 6, batch: int = 16) -> float:
    rng = np.random.default_rng(5)
    x = rng.normal(size=(batch, 3, 32, 32)).astype(np.float32)
    y = np.eye(10, dtype=np.float32)[rng.integers(0, 10, batch)]
    model = build_model("vgg11", (3, 32, 32), 10, width=2, rng=np.random.default_rng(3))
    model.train()
    optimizer = SGD(model.parameters(), lr=0.01)
    loss_fn = CrossEntropy()

    if world == 1:
        def step():
            for p in model.parameters():
                p.zero_grad()
            logits = model(Tensor(x))
            loss = loss_fn(logits, y)
            loss.backward()
            optimizer.step()
            return float(loss.item())

        step()  # warm-up
        start = time.perf_counter()
        for _ in range(steps):
            last = step()
        elapsed = time.perf_counter() - start
        assert np.isfinite(last)
        return steps / elapsed

    with DataParallelGroup(
        model, loss_fn, world, batch_capacity=batch, backend="process"
    ) as group:
        group.forward_backward(x, y)  # warm-up: forks workers, maps buffers
        optimizer.step()
        start = time.perf_counter()
        for _ in range(steps):
            batch_loss, _ = group.forward_backward(x, y)
            optimizer.step()
        elapsed = time.perf_counter() - start
        assert np.isfinite(batch_loss)
    return steps / elapsed


def test_cluster_scaling_trajectory():
    # Disk caching would let later runs replay earlier training and fake
    # the scaling curve; force cold runs.
    os.environ.pop("REPRO_CACHE_DIR", None)

    # One untimed sweep first: the process that runs first pays allocator
    # and cpu-frequency warm-up that would skew whichever measured run led.
    _run_pool_baseline()

    pool_s, pool_results = _run_pool_baseline()
    one_s, one_results = _run_cluster(1)
    two_s, two_results = _run_cluster(2)

    # Scheduling must never change the science — any executor, any fleet.
    assert results_equivalent(pool_results, one_results)
    assert results_equivalent(pool_results, two_results)

    speedup = round(one_s / two_s, 3)
    overhead_vs_pool = round(one_s / pool_s - 1.0, 3)

    ddp1 = _vgg11_steps_per_s(1)
    ddp2 = _vgg11_steps_per_s(2)

    payload = {
        "scale": TINY.name,
        "grid_cells": len(plan_study(scale=TINY, **GRID)),
        "pool_jobs1_seconds": round(pool_s, 3),
        "cluster_points": [
            {"workers": 1, "seconds": round(one_s, 3)},
            {"workers": 2, "seconds": round(two_s, 3)},
        ],
        "speedup_at_2_workers": speedup,
        "cluster_overhead_vs_pool_jobs1": overhead_vs_pool,
        "vgg11_allreduce": {
            "batch": 16,
            "steps_per_s_world1": round(ddp1, 3),
            "steps_per_s_world2": round(ddp2, 3),
            "speedup": round(ddp2 / ddp1, 3),
        },
        "speedup_enforced": _enforce_speedups(),
    }
    out = write_bench_json("BENCH_cluster_scaling.json", "cluster_scaling", payload)
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")

    if _enforce_speedups():
        assert speedup >= 1.8, (
            f"2-worker cluster sweep only {speedup}× faster than 1 worker"
        )
        assert overhead_vs_pool <= 0.05, (
            f"1-worker cluster run {overhead_vs_pool:+.1%} vs jobs=1 pool "
            "(budget: +5%)"
        )


if __name__ == "__main__":
    test_cluster_scaling_trajectory()
