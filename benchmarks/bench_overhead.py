"""Bench: runtime overhead analysis (paper §IV-E).

The paper reports: inference overhead 1× for every technique except
ensembles (5×, five models); training overhead lowest for label smoothing
(~1×), ~1.5× for knowledge distillation, high for label correction, and
highest (~5×) for ensembles.
"""

from __future__ import annotations

from repro.experiments import overhead_table, render_overheads


def test_overhead_multipliers(benchmark, runner, save_result):
    overheads = benchmark.pedantic(
        overhead_table,
        args=(runner,),
        kwargs={"dataset": "gtsrb", "model": "convnet", "fault_rate": 0.1},
        rounds=1,
        iterations=1,
    )

    # Label smoothing: cheapest protection (~1x training, 1x inference).
    ls = overheads["label_smoothing"]
    assert ls.training_overhead < 2.0
    assert 0.3 < ls.inference_overhead < 3.0

    # Knowledge distillation: teacher + early-stopped student (between 1.2x
    # and ~2.5x training), no inference overhead.
    kd = overheads["knowledge_distillation"]
    assert 1.2 < kd.training_overhead < 3.0

    # Label correction: costlier than label smoothing (secondary model).
    assert overheads["label_correction"].training_overhead > ls.training_overhead

    # Ensembles: by far the highest training cost (five diverse models, some
    # much deeper than the baseline convnet) and ~5x inference cost.
    ens = overheads["ensemble"]
    assert ens.training_overhead > 4.0
    assert ens.inference_overhead > 2.5

    save_result("overhead", render_overheads(overheads))
