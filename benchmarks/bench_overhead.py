"""Bench: runtime overhead analysis (paper §IV-E).

The paper reports: inference overhead 1× for every technique except
ensembles (5×, five models); training overhead lowest for label smoothing
(~1×), ~1.5× for knowledge distillation, high for label correction, and
highest (~5×) for ensembles.
"""

from __future__ import annotations

import time

from bench_common import write_bench_json
from repro.experiments import ExperimentRunner, overhead_table, render_overheads, run_resilient_study
from repro.faults import FaultType
from repro.telemetry import read_trace, validate_trace


def test_overhead_multipliers(benchmark, runner, save_result):
    overheads = benchmark.pedantic(
        overhead_table,
        args=(runner,),
        kwargs={"dataset": "gtsrb", "model": "convnet", "fault_rate": 0.1},
        rounds=1,
        iterations=1,
    )

    # Label smoothing: cheapest protection (~1x training, 1x inference).
    ls = overheads["label_smoothing"]
    assert ls.training_overhead < 2.0
    assert 0.3 < ls.inference_overhead < 3.0

    # Knowledge distillation: teacher + early-stopped student (between 1.2x
    # and ~2.5x training), no inference overhead.
    kd = overheads["knowledge_distillation"]
    assert 1.2 < kd.training_overhead < 3.0

    # Label correction: costlier than label smoothing (secondary model).
    assert overheads["label_correction"].training_overhead > ls.training_overhead

    # Ensembles: by far the highest training cost (five diverse models, some
    # much deeper than the baseline convnet) and ~5x inference cost.
    ens = overheads["ensemble"]
    assert ens.training_overhead > 4.0
    assert ens.inference_overhead > 2.5

    save_result("overhead", render_overheads(overheads))


def test_telemetry_overhead(tmp_path):
    """Tracing a sweep must cost well under 5% wall-clock.

    Runs the same small study grid twice on fresh runners (no disk cache, so
    both runs really train), once untraced and once tracing to a JSONL file,
    and records the comparison in ``benchmarks/results/BENCH_telemetry_overhead.json``.
    """
    grid = dict(
        models=("convnet",),
        datasets=("pneumonia",),
        fault_types=(FaultType.MISLABELLING, FaultType.REMOVAL),
        rates=(0.1, 0.3),
        techniques=["baseline", "label_smoothing"],
    )  # 8 cells

    def sweep(trace=None):
        start = time.perf_counter()
        report = run_resilient_study(ExperimentRunner("smoke"), trace=trace, **grid)
        assert report.ok
        return time.perf_counter() - start

    sweep()  # warm-up: page caches, numpy init, dataset synthesis paths
    trace_path = tmp_path / "trace.jsonl"
    off_s = sweep()
    on_s = sweep(trace=trace_path)

    events = read_trace(trace_path)
    stats = validate_trace(events)
    assert stats["spans"] > 0

    overhead_frac = (on_s - off_s) / off_s
    payload = {
        "off_s": round(off_s, 4),
        "on_s": round(on_s, 4),
        "overhead_frac": round(overhead_frac, 4),
        "events": stats["events"],
        "spans": stats["spans"],
        "cells": 8,
    }
    write_bench_json("BENCH_telemetry_overhead.json", "telemetry_overhead", payload)
    print(f"\ntelemetry overhead: off={off_s:.2f}s on={on_s:.2f}s "
          f"({100 * overhead_frac:+.1f}%), {stats['events']} events")
    # The real budget is <5%; assert with slack because single-round CI
    # timings are noisy — the JSON records the measured number.
    assert overhead_frac < 0.25


def test_kernel_tap_overhead():
    """The disabled kernel-tap path must cost < 2% of inference wall-clock.

    The tap (``repro.nn.functional.kernel_tap``) is the hardware-fault
    injector's hook into every kernel's forward output.  When no injection
    context is armed it is one thread-local ``getattr`` per op, and this
    bench gates that cost: forward passes with no tap installed are timed
    against forward passes under an armed *identity* tap — an upper bound on
    the disabled check, since the armed path runs the getattr, the branch,
    and a no-op call.  Results land in
    ``benchmarks/results/BENCH_hardware_tap_overhead.json``.
    """
    import numpy as np

    from repro.models.registry import build_model
    from repro.nn import Tensor, no_grad
    from repro.nn.functional import kernel_tap_scope

    model = build_model(
        "convnet", image_shape=(3, 16, 16), num_classes=10, seed=0
    ).eval()
    batch = np.random.default_rng(0).random((32, 3, 16, 16)).astype(np.float32)

    def forward() -> None:
        with no_grad():
            model(Tensor(batch))

    def best_of(repeats: int = 7, loops: int = 5) -> float:
        # Min-of-N: immune to scheduler noise in a shared CI runner.
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(loops):
                forward()
            best = min(best, time.perf_counter() - start)
        return best

    forward()  # warm-up: workspace allocation, numpy init
    disabled_s = best_of()
    with kernel_tap_scope(lambda site, array: None):
        forward()
        armed_s = best_of()

    overhead_frac = (armed_s - disabled_s) / disabled_s
    payload = {
        "disabled_s": round(disabled_s, 6),
        "armed_identity_s": round(armed_s, 6),
        "overhead_frac": round(overhead_frac, 6),
        "budget_frac": 0.02,
    }
    write_bench_json(
        "BENCH_hardware_tap_overhead.json", "hardware_tap_overhead", payload
    )
    print(f"\nkernel tap overhead: disabled={disabled_s:.4f}s "
          f"armed-identity={armed_s:.4f}s ({100 * overhead_frac:+.2f}%)")
    # Budget is <2%; the armed-identity comparison is an upper bound on the
    # disabled-path check, and min-of-N keeps the measurement tight.
    assert overhead_frac < 0.02


def test_metrics_overhead():
    """The disabled live-metrics path must cost < 2% of training wall-clock.

    When no registry is armed, ``get_metrics()`` returns the null singleton
    and the trainer's per-epoch instrumentation is a single ``enabled``
    check.  This bench gates that cost the same way the kernel-tap bench
    does: a fit with metrics disabled is timed against a fit under an armed
    :class:`MetricsRegistry` — an upper bound on the disabled check, since
    the armed path also pays the counter increments and histogram
    observations.  Results land in
    ``benchmarks/results/BENCH_metrics_overhead.json``.
    """
    import numpy as np

    from repro.models.registry import build_model
    from repro.nn import Adam, CrossEntropy, Trainer
    from repro.telemetry import MetricsRegistry, metrics_scope

    rng = np.random.default_rng(0)
    n, classes = 512, 10
    x = rng.standard_normal((n, 3, 16, 16)).astype(np.float32)
    y = np.eye(classes, dtype=np.float32)[rng.integers(0, classes, n)]

    def fit() -> None:
        model = build_model("convnet", image_shape=(3, 16, 16), num_classes=classes, seed=0)
        trainer = Trainer(model, CrossEntropy(), Adam(model.parameters(), lr=0.01),
                          epochs=3, batch_size=32, rng=np.random.default_rng(0))
        trainer.fit(x, y)

    def timed_fit() -> float:
        start = time.perf_counter()
        fit()
        return time.perf_counter() - start

    # Interleaved min-of-N: each round times both modes back to back, so
    # machine drift on a shared CI runner cannot bias one side.
    fit()  # warm-up: workspace allocation, numpy init
    disabled_s = armed_s = float("inf")
    for _ in range(5):
        disabled_s = min(disabled_s, timed_fit())
        with metrics_scope(MetricsRegistry()):
            armed_s = min(armed_s, timed_fit())

    overhead_frac = (armed_s - disabled_s) / disabled_s
    payload = {
        "disabled_s": round(disabled_s, 6),
        "armed_registry_s": round(armed_s, 6),
        "overhead_frac": round(overhead_frac, 6),
        "budget_frac": 0.02,
    }
    write_bench_json("BENCH_metrics_overhead.json", "metrics_overhead", payload)
    print(f"\nmetrics overhead: disabled={disabled_s:.4f}s "
          f"armed-registry={armed_s:.4f}s ({100 * overhead_frac:+.2f}%)")
    # Budget is <2%; the armed-registry comparison is an upper bound on the
    # disabled-path check, and min-of-N keeps the measurement tight.
    assert overhead_frac < 0.02
