"""Bench: regenerate paper Table IV (golden accuracies per technique).

Paper §IV-A: each technique is trained *without* fault injection across
models × datasets; most techniques do not hurt golden accuracy, but label
correction and robust loss degrade it on the small Pneumonia dataset.
"""

from __future__ import annotations

from repro.experiments import golden_accuracy_table, render_table4
from repro.mitigation import technique_names

MODELS = ("resnet50", "convnet")  # one deep + one shallow (Table IV subset)
DATASETS = ("cifar10", "gtsrb", "pneumonia")


def test_table4_golden_accuracies(benchmark, runner, save_result):
    techniques = technique_names()
    table = benchmark.pedantic(
        golden_accuracy_table,
        args=(runner,),
        kwargs={"models": MODELS, "datasets": DATASETS, "techniques": techniques},
        rounds=1,
        iterations=1,
    )

    # Every cell is a valid accuracy.
    for cell in table.values():
        assert 0.0 <= cell.mean <= 1.0

    # Shape check (paper §IV-A): on well-sized datasets the baseline golden
    # accuracy is high, i.e. the substrate actually learns the task.
    assert table[("convnet", "gtsrb", "baseline")].mean > 0.6
    assert table[("convnet", "pneumonia", "baseline")].mean > 0.6

    save_result(
        "table4_golden_accuracy", render_table4(table, MODELS, DATASETS, techniques)
    )
