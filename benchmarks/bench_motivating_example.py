"""Bench: the motivating Pneumonia example (paper §II, Fig. 1, §III-D).

The paper trains ResNet50 on the Pneumonia dataset, injects 10 % mislabelling,
and reports: golden accuracy 90 % -> faulty accuracy ~55 %, then per-technique
ADs of LS 5 %, LC 29 %, RL 15 %, KD 13 %, Ens 5 % (LS and Ens best).
"""

from __future__ import annotations

from repro.experiments import motivating_example, render_motivating_example


def test_motivating_example_pneumonia_resnet50(benchmark, runner, save_result):
    result = benchmark.pedantic(
        motivating_example, args=(runner,), kwargs={"rate": 0.1}, rounds=1, iterations=1
    )

    # Shape check 1: the golden model must be strong on clean data.
    assert result.golden_accuracy.mean > 0.7
    # Shape check 2: every technique AD is a valid proportion.
    for ad in result.technique_ads.values():
        assert 0.0 <= ad.mean <= 1.0
    # Shape check 3 (paper §III-D): ensembles are among the best protections.
    ranked = [name for name, _ in result.ranked_techniques()]
    assert ranked.index("ensemble") <= 2

    save_result("motivating_example", render_motivating_example(result))
