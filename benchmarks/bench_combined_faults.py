"""Bench: combined fault types (paper §IV-C).

The paper reports that injecting combinations of fault types yields ADs
statistically similar to the dominant single fault type: mislabelling
dominates mislabelling+removal and mislabelling+repetition; repetition
dominates removal+repetition.
"""

from __future__ import annotations

from repro.experiments import combined_fault_analysis, render_combined_verdicts


def test_combined_faults_match_dominant_type(benchmark, runner, save_result):
    verdicts = benchmark.pedantic(
        combined_fault_analysis,
        args=(runner,),
        kwargs={"dataset": "gtsrb", "model": "convnet", "rate": 0.3},
        rounds=1,
        iterations=1,
    )

    assert len(verdicts) == 3
    dominants = [v.dominant_label for v in verdicts]
    assert dominants == ["mislabelling@30%", "mislabelling@30%", "repetition@30%"]
    for verdict in verdicts:
        assert 0.0 <= verdict.combined_ad.mean <= 1.0

    # Shape: the majority of combinations behave like their dominant part.
    assert sum(v.similar for v in verdicts) >= 2

    save_result("combined_faults", render_combined_verdicts(verdicts))
