"""Bench: ablations of the design choices called out in DESIGN.md.

Three ablations on GTSRB + ConvNet under 30 % mislabelling:

1. Label smoothing mode — uniform smoothing vs the paper's label relaxation
   (this reproduction defaults to uniform; see the LS technique docstring).
2. Active-passive loss pairs — NCE+RCE (the paper's pick) vs NFL+MAE.
3. Ensemble size — 3 vs 5 members (the paper found n=5 most effective).
"""

from __future__ import annotations

from repro.faults import mislabelling

FAULT = mislabelling(0.3)


def test_ablation_label_smoothing_mode(benchmark, runner, save_result):
    def run():
        uniform = runner.run(
            "gtsrb", "convnet", "label_smoothing", FAULT,
            technique_kwargs={"mode": "uniform", "alpha": 0.2},
        )
        relaxation = runner.run(
            "gtsrb", "convnet", "label_smoothing", FAULT,
            technique_kwargs={"mode": "relaxation", "alpha": 0.1},
        )
        return uniform, relaxation

    uniform, relaxation = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: label smoothing mode (gtsrb, convnet, mislabelling@30%)",
        f"  uniform (default):   AD={uniform.accuracy_delta.mean:.1%}",
        f"  relaxation (paper):  AD={relaxation.accuracy_delta.mean:.1%}",
    ]
    save_result("ablation_ls_mode", "\n".join(lines))
    assert 0.0 <= uniform.accuracy_delta.mean <= 1.0
    assert 0.0 <= relaxation.accuracy_delta.mean <= 1.0


def test_ablation_apl_loss_pairs(benchmark, runner, save_result):
    def run():
        nce_rce = runner.run("gtsrb", "convnet", "robust_loss", FAULT)
        nfl_mae = runner.run(
            "gtsrb", "convnet", "robust_loss", FAULT,
            technique_kwargs={"active": "nfl", "passive": "mae", "alpha": 10.0, "beta": 0.1},
        )
        return nce_rce, nfl_mae

    nce_rce, nfl_mae = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: active-passive loss pair (gtsrb, convnet, mislabelling@30%)",
        f"  NCE+RCE (paper): AD={nce_rce.accuracy_delta.mean:.1%}",
        f"  NFL+MAE:         AD={nfl_mae.accuracy_delta.mean:.1%}",
    ]
    save_result("ablation_apl_pair", "\n".join(lines))


def test_ablation_ensemble_size(benchmark, runner, save_result):
    def run():
        five = runner.run("gtsrb", "convnet", "ensemble", FAULT)
        three = runner.run(
            "gtsrb", "convnet", "ensemble", FAULT,
            technique_kwargs={"members": ("convnet", "deconvnet", "vgg11")},
        )
        return five, three

    five, three = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: ensemble size (gtsrb, convnet golden, mislabelling@30%)",
        f"  5 members (paper): AD={five.accuracy_delta.mean:.1%}",
        f"  3 members:         AD={three.accuracy_delta.mean:.1%}",
    ]
    save_result("ablation_ensemble_size", "\n".join(lines))
    assert 0.0 <= five.accuracy_delta.mean <= 1.0
    assert 0.0 <= three.accuracy_delta.mean <= 1.0
